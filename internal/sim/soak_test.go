package sim

import (
	"math/rand"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/workload"
)

// TestSoakLargeGridCorrupted is the scale test: a 6×6 grid (36 processors,
// 36 destinations × 6 rules + 36 routing rules per processor), fully
// corrupted start, 120 messages in randomized waves, distributed daemon —
// Specification SP must hold end to end.
func TestSoakLargeGridCorrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g := graph.Grid(6, 6)
	rng := rand.New(rand.NewSource(606))
	w := workload.RandomPairs(g, 120, rng).Staggered(25)
	r := Run(Scenario{
		Name:     "soak-grid-6x6",
		Graph:    g,
		Corrupt:  &core.DefaultCorrupt,
		Daemon:   Distributed,
		Seed:     606,
		Workload: w,
		MaxSteps: 20_000_000,
		NoRA:     true,
		// Check the §3.2 domain invariants throughout (thinned: the probe
		// is O(n²) per call).
		Monitors:     []Monitor{WellTypedMonitor()},
		MonitorEvery: 64,
	})
	if !r.OK() {
		t.Fatalf("soak failed: %s; violations=%v lost=%d monitor=%v", r.String(), r.Violations, len(r.Lost), r.MonitorErr)
	}
	if r.Generated != 120 {
		t.Fatalf("generated = %d, want 120", r.Generated)
	}
	t.Logf("soak: %d steps, %d rounds, %d invalid surfaced, latency p90=%.0f rounds",
		r.Steps, r.Rounds, r.InvalidDelivered, r.LatencyRounds.P90)
}

// TestSoakTorusAllToAll saturates a 4×4 torus with all-to-all traffic on a
// clean start — the throughput regime of Proposition 7 at scale.
func TestSoakTorusAllToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g := graph.Torus(4, 4)
	r := Run(Scenario{
		Name:     "soak-torus-a2a",
		Graph:    g,
		Daemon:   Synchronous,
		Seed:     44,
		Workload: workload.AllToAll(g, 1),
		MaxSteps: 20_000_000,
		NoRA:     true,
	})
	if !r.OK() {
		t.Fatalf("soak failed: %s", r.String())
	}
	if r.Generated != 16*15 {
		t.Fatalf("generated = %d", r.Generated)
	}
	amortized := float64(r.Rounds) / float64(r.Generated)
	if amortized > float64(3*g.Diameter())+10 {
		t.Fatalf("amortized rounds/delivery %.1f above the Prop. 7 envelope", amortized)
	}
	t.Logf("soak: %d steps, %d rounds, amortized %.2f rounds/delivery (3D=%d)",
		r.Steps, r.Rounds, amortized, 3*g.Diameter())
}
