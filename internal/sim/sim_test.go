package sim

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

func TestRunCleanScenario(t *testing.T) {
	g := graph.Line(5)
	r := Run(Scenario{
		Name:     "clean",
		Graph:    g,
		Daemon:   Synchronous,
		Seed:     1,
		Workload: workload.SinglePair(0, 4, 3),
		MaxSteps: 100_000,
	})
	if !r.OK() {
		t.Fatalf("clean scenario failed: %+v", r)
	}
	if r.Generated != 3 || r.DeliveredValid != 3 || r.InvalidDelivered != 0 {
		t.Fatalf("accounting: %+v", r)
	}
	if r.RoutingRounds != 0 {
		t.Fatalf("routing rounds = %d, want 0 (tables start correct)", r.RoutingRounds)
	}
	if r.MovesByRule["R1"] != 3 || r.MovesByRule["R6"] != 3 {
		t.Fatalf("moves: %v", r.MovesByRule)
	}
	if r.LatencyRounds.N != 3 || r.LatencyRounds.Max <= 0 {
		t.Fatalf("latency summary: %+v", r.LatencyRounds)
	}
	if !strings.Contains(r.String(), "OK") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestRunCorruptScenarioMeasuresRA(t *testing.T) {
	g := graph.Ring(5)
	r := Run(Scenario{
		Name:     "corrupt",
		Graph:    g,
		Corrupt:  &core.DefaultCorrupt,
		Daemon:   Synchronous,
		Seed:     7,
		Workload: workload.RandomPairs(g, 4, rand.New(rand.NewSource(7))),
		MaxSteps: 1_000_000,
	})
	if !r.OK() {
		t.Fatalf("corrupt scenario failed: %+v", r)
	}
	if r.RoutingRounds < 0 {
		t.Fatal("routing stabilization was never observed")
	}
}

func TestRunSkipsIdleWaits(t *testing.T) {
	g := graph.Line(3)
	w := workload.SinglePair(0, 2, 2)
	w[1].AtStep = 1 << 30 // scheduled far beyond any reachable step
	r := Run(Scenario{
		Name: "idle", Graph: g, Daemon: Synchronous, Seed: 1,
		Workload: w, MaxSteps: 100_000,
	})
	if !r.OK() || r.Generated != 2 {
		t.Fatalf("idle-skip failed: %+v", r)
	}
}

func TestBaseRule(t *testing.T) {
	if BaseRule("R3@17") != "R3" || BaseRule("A@0") != "A" || BaseRule("noat") != "noat" {
		t.Fatal("BaseRule wrong")
	}
}

func TestNewDaemonKinds(t *testing.T) {
	for _, k := range []DaemonKind{Synchronous, CentralRandom, CentralRoundRobin, Distributed, WeaklyFairLIFO} {
		if d := NewDaemon(k, 1, 5); d == nil || d.Name() == "" {
			t.Fatalf("daemon kind %q broken", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	NewDaemon("bogus", 1, 5)
}

func TestExperimentF1(t *testing.T) {
	r := ExperimentF1()
	if !r.Acyclic || r.Components != 5 || !r.AllTrees {
		t.Fatalf("F1 failed: %+v", r)
	}
	if r.Table.Rows() != 5 {
		t.Fatalf("F1 table rows = %d", r.Table.Rows())
	}
}

func TestExperimentF2(t *testing.T) {
	r := ExperimentF2()
	if !r.CleanAcyclic {
		t.Fatal("clean SSMFP buffer graph must be acyclic")
	}
	if r.BuffersPerCC != 8 { // 2 buffers × 4 processors
		t.Fatalf("buffers per component = %d, want 8", r.BuffersPerCC)
	}
	if r.CycleLen == 0 {
		t.Fatal("corrupted tables must yield a cycle")
	}
}

func TestExperimentF3(t *testing.T) {
	r := ExperimentF3()
	if !r.OK {
		t.Fatalf("Figure 3 replay failed:\n%s\ntrace:\n%s", strings.Join(r.Failures, "\n"), r.Trace)
	}
	if !r.CycleInitially || r.HelloColor != 1 || r.Deliveries != 3 {
		t.Fatalf("F3 result: %+v", r)
	}
	if !strings.Contains(r.Trace, "(0) initial configuration") {
		t.Fatal("trace missing initial frame")
	}
}

func TestExperimentF4(t *testing.T) {
	r := ExperimentF4(11)
	if !r.Consistent {
		t.Fatal("caterpillar census inconsistent (occupied buffers without a head)")
	}
	if !r.AllTypesHit {
		t.Fatalf("not all caterpillar types observed: %v", r.Seen)
	}
}

func TestExperimentP4(t *testing.T) {
	r := ExperimentP4(3, []int{4, 6})
	if !r.WithinBound {
		t.Fatalf("Proposition 4 bound violated: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.TotalDelivered == 0 {
			t.Fatal("expected some invalid deliveries under full corruption")
		}
	}
}

func TestExperimentP6(t *testing.T) {
	r := ExperimentP6(5)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MaxWaiting <= 0 {
			t.Fatalf("waiting time not measured: %+v", row)
		}
	}
}

func TestExperimentP7(t *testing.T) {
	r := ExperimentP7(5, []int{2, 4, 6})
	if !r.Within {
		t.Fatalf("amortized complexity above 3D reference: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Deliveries == 0 || row.Amortized <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
	}
	// Amortized cost must not explode: the fit over D should be sublinear
	// in absolute terms (slope well below the 3·D proof constant).
	if r.Fit.Slope > 3.0 {
		t.Fatalf("amortized slope %v too steep", r.Fit.Slope)
	}
}

func TestExperimentP5(t *testing.T) {
	if testing.Short() {
		t.Skip("P5 sweep is the slowest experiment; skipped in -short mode")
	}
	r := ExperimentP5(5)
	if !r.WithinBound {
		t.Fatalf("Proposition 5 bound violated: %+v", r.Rows)
	}
	// Latency must grow with the diameter along the line sweep.
	var lines []P5Row
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Topology, "line-") {
			lines = append(lines, row)
		}
	}
	if len(lines) < 2 || lines[len(lines)-1].MaxLatency <= lines[0].MaxLatency {
		t.Fatalf("latency should grow with D: %+v", lines)
	}
}

func TestExperimentX1(t *testing.T) {
	r := ExperimentX1(9)
	if !r.SSMFPOK {
		t.Fatalf("SSMFP failed in the comparison: %+v", r.Rows[0])
	}
	atomic, naive := r.Rows[1], r.Rows[2]
	if !atomic.Stuck {
		t.Fatalf("classical atomic controller should livelock in the loop: %+v", atomic)
	}
	if naive.Lost == 0 && naive.Violations == 0 && !naive.Stuck {
		t.Fatalf("naive port unexpectedly clean: %+v", naive)
	}
}

func TestExperimentX2(t *testing.T) {
	r := ExperimentX2(13)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SSMFPMoves <= 0 || row.ClassicalMoves <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
		if row.Overhead < 1 || row.Overhead > 8 {
			t.Fatalf("overhead %v outside the 'small constant' claim", row.Overhead)
		}
	}
}

func TestExperimentX3(t *testing.T) {
	r := ExperimentX3(21)
	if !r.AllOK {
		t.Fatalf("message-passing port violated exactly-once: %+v", r.Rows)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestExperimentX4(t *testing.T) {
	r := ExperimentX4(31)
	if !r.AllOK {
		t.Fatalf("acyclic-cover controller failed: %+v", r.Rows)
	}
	if r.Rows[0].AcyclicK != 3 {
		t.Fatalf("ring cover size = %d, want 3 (the paper's '3 for a ring')", r.Rows[0].AcyclicK)
	}
	if r.Rows[1].AcyclicK != 2 {
		t.Fatalf("tree cover size = %d, want 2 (the paper's '2 for a tree')", r.Rows[1].AcyclicK)
	}
	if r.Rows[0].Stretch <= 1.0 {
		t.Fatalf("clockwise ring routing must show stretch > 1, got %v", r.Rows[0].Stretch)
	}
	if r.Rows[1].Stretch != 1.0 {
		t.Fatalf("tree routing is minimal, stretch = %v", r.Rows[1].Stretch)
	}
	for _, row := range r.Rows {
		if row.AcyclicK >= row.DestBased {
			t.Fatalf("cover should beat the destination scheme on buffers: %+v", row)
		}
	}
}

func TestExperimentX5(t *testing.T) {
	r := ExperimentX5(33)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byPolicy := map[string]X5Row{}
	for _, row := range r.Rows {
		byPolicy[row.Policy] = row
		if !row.AllDelivered {
			t.Fatalf("policy %s failed to deliver (finite supply: even unfair policies finish): %+v", row.Policy, row)
		}
		if row.ProbeDelivery < 0 {
			t.Fatalf("probe never delivered under %s", row.Policy)
		}
	}
	// The unfair policy must serve the probe later than the paper's queue.
	if byPolicy["lowest-id"].ProbeDelivery <= byPolicy["fifo-queue"].ProbeDelivery {
		t.Fatalf("lowest-id should starve the probe relative to the queue: %+v vs %+v",
			byPolicy["lowest-id"], byPolicy["fifo-queue"])
	}
}

func TestExperimentX6(t *testing.T) {
	r := ExperimentX6(35)
	if !r.AllOK {
		t.Fatalf("fault-storm experiment failed: %+v", r.Rows)
	}
	if r.Rows[len(r.Rows)-1].Compromised == 0 {
		t.Fatal("the heaviest storm should compromise something")
	}
}

func TestExperimentRA(t *testing.T) {
	r := ExperimentRA(47)
	if !r.Tracks {
		t.Fatalf("latency should track R_A: %+v", r.Rows)
	}
	if r.Rows[0].RoutingRound < 0 || r.Rows[1].RoutingRound < 0 {
		t.Fatalf("R_A never observed: %+v", r.Rows)
	}
}

func TestMonitorsRunAndTrip(t *testing.T) {
	g := graph.Line(4)
	// The well-typed monitor passes on a healthy run.
	r := Run(Scenario{
		Name: "mon-ok", Graph: g, Daemon: Synchronous, Seed: 1,
		Workload: workload.SinglePair(0, 3, 2),
		Monitors: []Monitor{WellTypedMonitor()},
		MaxSteps: 100_000,
	})
	if !r.OK() || r.MonitorErr != nil {
		t.Fatalf("healthy run tripped a monitor: %v", r.MonitorErr)
	}
	// A monitor that always fails aborts the run and surfaces the error.
	calls := 0
	r = Run(Scenario{
		Name: "mon-trip", Graph: g, Daemon: Synchronous, Seed: 1,
		Workload: workload.SinglePair(0, 3, 1),
		Monitors: []Monitor{{Name: "tripwire", Check: func(g *graph.Graph, cfg []sm.State) error {
			calls++
			if calls > 2 {
				return errTrip
			}
			return nil
		}}},
		MaxSteps: 100_000,
	})
	if r.OK() || r.MonitorErr == nil {
		t.Fatalf("tripwire did not abort: %+v", r)
	}
	if !strings.Contains(r.MonitorErr.Error(), "tripwire") {
		t.Fatalf("monitor error unnamed: %v", r.MonitorErr)
	}
}

var errTrip = fmt.Errorf("tripped")

// TestFigure3GoldenTrace pins the exact rendered replay of Figure 3: any
// change to the script, the rules, the renderer, or the color assignment
// shows up as a diff against testdata/figure3.golden.
func TestFigure3GoldenTrace(t *testing.T) {
	want, err := os.ReadFile("testdata/figure3.golden")
	if err != nil {
		t.Fatal(err)
	}
	r := ExperimentF3()
	if !r.OK {
		t.Fatalf("replay failed: %v", r.Failures)
	}
	got := strings.TrimRight(r.Trace, "\n")
	if got != strings.TrimRight(string(want), "\n") {
		t.Fatalf("Figure 3 trace diverged from the golden file.\n--- got ---\n%s\n--- want ---\n%s",
			got, string(want))
	}
}

func TestExperimentMC(t *testing.T) {
	r := ExperimentMC()
	if !r.AllOK {
		t.Fatalf("model-check suite failed: %+v", r.Rows)
	}
	if !r.LiteralR5Found || len(r.Witness) != 2 {
		t.Fatalf("literal R5 witness wrong: found=%v witness=%v", r.LiteralR5Found, r.Witness)
	}
}
