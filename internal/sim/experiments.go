package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ssmfp/internal/baseline"
	"ssmfp/internal/buffergraph"
	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// correctTables builds the canonical routing tables for g.
func correctTables(g *graph.Graph) []*routing.NodeState {
	ts := make([]*routing.NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = routing.CorrectState(g, graph.ProcessID(p))
	}
	return ts
}

// --- E-F1: Figure 1, destination-based buffer graph -------------------

// F1Result verifies the Figure 1 claims: with correct tables the
// destination-based buffer graph is acyclic and has n connected
// components, the one of destination d isomorphic to the routing tree T_d.
type F1Result struct {
	Acyclic    bool
	Components int
	AllTrees   bool
	Table      *metrics.Table
}

// ExperimentF1 reconstructs Figure 1 on the paper's 5-processor example
// network.
func ExperimentF1() F1Result {
	g := graph.Figure1Network()
	bg := buffergraph.DestinationBased(g, correctTables(g))
	res := F1Result{
		Acyclic:    bg.Acyclic(),
		Components: len(bg.Components()),
		AllTrees:   true,
	}
	t := metrics.NewTable("E-F1: destination-based buffer graph (Figure 1)",
		"destination", "buffers", "edges", "isomorphic to T_d")
	for d := 0; d < g.N(); d++ {
		sub := bg.Restrict(graph.ProcessID(d))
		isTree := bg.ComponentIsTree(graph.ProcessID(d))
		if !isTree {
			res.AllTrees = false
		}
		t.AddRow(d, sub.Size(), sub.EdgeCount(), isTree)
	}
	res.Table = t
	return res
}

// --- E-F2: Figure 2, SSMFP's two-buffer graph --------------------------

// F2Result verifies the Figure 2 structure and its corruption hazard: with
// correct tables the two-buffer graph is acyclic; with a routing loop it
// has a cycle (the deadlock hazard SSMFP tolerates while A repairs).
type F2Result struct {
	CleanAcyclic bool
	BuffersPerCC int
	CycleLen     int // length of the cycle found under corruption (0 = none)
	Table        *metrics.Table
}

// ExperimentF2 builds the SSMFP buffer graph for one destination of the
// Figure 3 network (destination b, as in the paper's Figure 2), then
// corrupts the tables to exhibit a cycle.
func ExperimentF2() F2Result {
	g := graph.Figure3Network()
	const destB = 1
	clean := buffergraph.SSMFP(g, correctTables(g))
	sub := clean.Restrict(destB)

	ts := correctTables(g)
	routing.CycleCorrupt(g, destB, 0, 2, ts) // a and c route at each other
	corrupt := buffergraph.SSMFP(g, ts)
	cycle := corrupt.Restrict(destB).FindCycle()

	res := F2Result{
		CleanAcyclic: sub.Acyclic(),
		BuffersPerCC: sub.Size(),
		CycleLen:     max(0, len(cycle)-1),
	}
	t := metrics.NewTable("E-F2: SSMFP buffer graph for destination b (Figure 2)",
		"tables", "buffers", "edges", "acyclic", "cycle length")
	t.AddRow("correct", sub.Size(), sub.EdgeCount(), sub.Acyclic(), 0)
	t.AddRow("corrupted (a↔c)", sub.Size(), corrupt.Restrict(destB).EdgeCount(),
		corrupt.Restrict(destB).Acyclic(), res.CycleLen)
	res.Table = t
	return res
}

// --- E-F4: Figure 4, caterpillar classification ------------------------

// F4Result reports the caterpillar census observed along an adversarial
// execution: all three types must occur, and every occupied buffer set must
// contain at least one caterpillar head (the progress witness of the
// proofs).
type F4Result struct {
	Seen        map[core.CaterpillarType]int
	AllTypesHit bool
	Consistent  bool
	Table       *metrics.Table
}

// ExperimentF4 runs a corrupted scenario on the Figure 1 network and
// classifies every buffer at every step.
func ExperimentF4(seed int64) F4Result {
	g := graph.Figure1Network()
	rng := rand.New(rand.NewSource(seed))
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	cfg[0].(*core.Node).FW.Enqueue("f4-probe", 4)
	cfg[3].(*core.Node).FW.Enqueue("f4-probe-2", 2)
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg)

	res := F4Result{Seen: make(map[core.CaterpillarType]int), Consistent: true}
	snapshot := func() []sm.State {
		out := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			out[p] = e.PeekStateOf(graph.ProcessID(p))
		}
		return out
	}
	for i := 0; i < 500_000; i++ {
		cfgNow := snapshot()
		for d := 0; d < g.N(); d++ {
			census := core.CaterpillarCensus(g, cfgNow, graph.ProcessID(d))
			for typ, c := range census {
				res.Seen[typ] += c
			}
			total, _ := core.Occupancy(cfgNow, graph.ProcessID(d))
			heads := census[core.Type1] + census[core.Type2] + census[core.Type3]
			if total > 0 && heads == 0 {
				res.Consistent = false
			}
		}
		if !e.Step() {
			break
		}
	}
	res.AllTypesHit = res.Seen[core.Type1] > 0 && res.Seen[core.Type2] > 0 && res.Seen[core.Type3] > 0
	t := metrics.NewTable("E-F4: caterpillar census over an adversarial execution (Figure 4)",
		"type", "buffer observations")
	for _, typ := range []core.CaterpillarType{core.Type1, core.Type2, core.Type3} {
		t.AddRow(typ.String(), res.Seen[typ])
	}
	res.Table = t
	return res
}

// --- E-P4: Proposition 4, ≤ 2n invalid deliveries ----------------------

// P4Row is one sweep point of experiment E-P4.
type P4Row struct {
	N              int
	InvalidPlaced  int
	MaxPerDest     int
	Bound          int
	TotalDelivered int
}

// P4Result sweeps network size with every buffer stuffed with invalid
// messages and verifies Proposition 4: at most 2n invalid messages are
// delivered per destination.
type P4Result struct {
	Rows        []P4Row
	WithinBound bool
	Table       *metrics.Table
}

// ExperimentP4 runs the invalid-delivery sweep.
func ExperimentP4(seed int64, sizes []int) P4Result {
	if len(sizes) == 0 {
		sizes = []int{4, 6, 8, 10}
	}
	res := P4Result{WithinBound: true}
	t := metrics.NewTable("E-P4: invalid deliveries per destination vs the 2n bound (Prop. 4)",
		"n", "invalid placed", "max delivered to one dest", "bound 2n", "total invalid delivered")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 2*n, rng)
		r := Run(Scenario{
			Name:  fmt.Sprintf("p4-n%d", n),
			Graph: g,
			Corrupt: &core.CorruptOptions{
				BufferFill:     1,
				CorruptRouting: true,
				CorruptQueues:  true,
			},
			Daemon:   Synchronous,
			Seed:     seed + int64(n),
			MaxSteps: 5_000_000,
			NoRA:     true,
		})
		row := P4Row{
			N:              n,
			InvalidPlaced:  2 * n * n,
			MaxPerDest:     r.MaxInvalidPerDst,
			Bound:          2 * n,
			TotalDelivered: r.InvalidDelivered,
		}
		if row.MaxPerDest > row.Bound {
			res.WithinBound = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.N, row.InvalidPlaced, row.MaxPerDest, row.Bound, row.TotalDelivered)
	}
	res.Table = t
	return res
}

// --- E-P5: Proposition 5, delivery latency bound -----------------------

// P5Row is one sweep point of experiment E-P5.
type P5Row struct {
	Topology   string
	Delta, D   int
	MaxLatency int     // worst observed generation→delivery rounds
	Bound      float64 // Δ^D reference
}

// P5Result checks that worst-case delivery latency stays within the
// O(max(R_A, Δ^D)) bound of Proposition 5 and shows how observed latency
// grows with D and Δ.
type P5Result struct {
	Rows        []P5Row
	WithinBound bool
	Table       *metrics.Table
}

// ExperimentP5 sweeps lines (growing D at Δ=2) and stars (growing Δ at
// D=2) under adversarial cross-traffic and a corrupted initial
// configuration.
func ExperimentP5(seed int64) P5Result {
	res := P5Result{WithinBound: true}
	t := metrics.NewTable("E-P5: worst delivery latency vs Δ^D bound (Prop. 5)",
		"topology", "Δ", "D", "max latency (rounds)", "Δ^D")
	type tc struct {
		name string
		g    *graph.Graph
	}
	var cases []tc
	for _, n := range []int{3, 5, 7, 9} {
		cases = append(cases, tc{fmt.Sprintf("line-%d", n), graph.Line(n)})
	}
	for _, n := range []int{4, 6, 8} {
		cases = append(cases, tc{fmt.Sprintf("star-%d", n), graph.Star(n)})
	}
	for i, c := range cases {
		g := c.g
		// Saturating cross-traffic: everyone sends to everyone once.
		w := workload.AllToAll(g, 1)
		r := Run(Scenario{
			Name:     "p5-" + c.name,
			Graph:    g,
			Corrupt:  &core.DefaultCorrupt,
			Daemon:   WeaklyFairLIFO,
			Seed:     seed + int64(i),
			Workload: w,
			MaxSteps: 8_000_000,
			NoRA:     true,
		})
		row := P5Row{
			Topology:   c.name,
			Delta:      g.MaxDegree(),
			D:          g.Diameter(),
			MaxLatency: int(r.LatencyRounds.Max),
			Bound:      math.Pow(float64(g.MaxDegree()), float64(g.Diameter())),
		}
		// The paper's bound is asymptotic; we check against a generous
		// constant multiple plus the routing-stabilization additive term.
		if float64(row.MaxLatency) > 40*(row.Bound+float64(4*g.N())) {
			res.WithinBound = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.Delta, row.D, row.MaxLatency, row.Bound)
	}
	res.Table = t
	return res
}

// --- E-P6: Proposition 6, delay and waiting time -----------------------

// P6Row is one sweep point of experiment E-P6.
type P6Row struct {
	Topology   string
	Delta, D   int
	Delay      int // rounds before the probe's first R1
	MaxWaiting int // max rounds between consecutive R1s at the probe source
}

// P6Result measures the delay (rounds before the first emission) and the
// waiting time (rounds between consecutive emissions) at a busy processor.
type P6Result struct {
	Rows  []P6Row
	Table *metrics.Table
}

// ExperimentP6 loads one source with k messages under all-to-one
// cross-traffic toward the same sink and measures its emission cadence.
func ExperimentP6(seed int64) P6Result {
	res := P6Result{}
	t := metrics.NewTable("E-P6: delay and waiting time at a loaded source (Prop. 6)",
		"topology", "Δ", "D", "delay (rounds)", "max waiting (rounds)")
	for i, g := range []*graph.Graph{graph.Line(5), graph.Star(6), graph.Grid(3, 3)} {
		sink := graph.ProcessID(0)
		probe := graph.ProcessID(g.N() - 1)
		w := workload.AllToOne(g, sink, 2)
		// The probe source sends three extra messages so waiting time has
		// at least two intervals.
		w = append(w, workload.SinglePair(probe, sink, 3)...)
		r := Run(Scenario{
			Name:     fmt.Sprintf("p6-%d", i),
			Graph:    g,
			Corrupt:  &core.DefaultCorrupt,
			Daemon:   CentralRandom,
			Seed:     seed + int64(i),
			Workload: w,
			MaxSteps: 8_000_000,
			NoRA:     true,
		})
		gens := r.GenRoundsBySource[probe]
		row := P6Row{Topology: g.String(), Delta: g.MaxDegree(), D: g.Diameter()}
		if len(gens) > 0 {
			row.Delay = gens[0]
			for j := 1; j < len(gens); j++ {
				if wait := gens[j] - gens[j-1]; wait > row.MaxWaiting {
					row.MaxWaiting = wait
				}
			}
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.Delta, row.D, row.Delay, row.MaxWaiting)
	}
	res.Table = t
	return res
}

// --- E-P7: Proposition 7, amortized complexity Θ(D) --------------------

// P7Row is one sweep point of experiment E-P7.
type P7Row struct {
	D          int
	Rounds     int
	Deliveries int
	Amortized  float64
}

// P7Result verifies the amortized bound: rounds per delivered message grow
// (at most) linearly in D under saturation — the Θ(D) of Proposition 7,
// with 3D as the proof's reference constant.
type P7Result struct {
	Rows   []P7Row
	Fit    metrics.Fit
	Within bool // every point ≤ 3D + constant slack
	Table  *metrics.Table
}

// ExperimentP7 saturates lines of growing diameter with all-to-one traffic.
func ExperimentP7(seed int64, diameters []int) P7Result {
	if len(diameters) == 0 {
		diameters = []int{2, 4, 6, 8}
	}
	res := P7Result{Within: true}
	t := metrics.NewTable("E-P7: amortized rounds per delivery vs D (Prop. 7)",
		"D", "rounds", "deliveries", "rounds/delivery", "3D reference")
	var xs, ys []float64
	for _, d := range diameters {
		g := graph.Line(d + 1)
		w := workload.AllToOne(g, 0, 4)
		r := Run(Scenario{
			Name:     fmt.Sprintf("p7-d%d", d),
			Graph:    g,
			Corrupt:  nil, // amortized analysis is about steady state
			Daemon:   Synchronous,
			Seed:     seed + int64(d),
			Workload: w,
			MaxSteps: 8_000_000,
			NoRA:     true,
		})
		deliveries := r.DeliveredValid + r.InvalidDelivered
		row := P7Row{D: d, Rounds: r.Rounds, Deliveries: deliveries}
		if deliveries > 0 {
			row.Amortized = float64(r.Rounds) / float64(deliveries)
		}
		if row.Amortized > float64(3*d)+10 {
			res.Within = false
		}
		res.Rows = append(res.Rows, row)
		xs = append(xs, float64(d))
		ys = append(ys, row.Amortized)
		t.AddRow(row.D, row.Rounds, row.Deliveries, row.Amortized, 3*d)
	}
	res.Fit = metrics.LinearFit(xs, ys)
	res.Table = t
	return res
}

// --- E-X1: SSMFP vs the classical baselines under corruption -----------

// X1Row is one protocol's outcome in experiment E-X1.
type X1Row struct {
	Protocol   string
	Delivered  int
	Lost       int
	Violations int  // duplications and other SP breaches observed
	Stuck      bool // deadlocked or livelocked
}

// X1Result contrasts SSMFP with the classical controllers from identical
// corrupted starting points: SSMFP satisfies SP; the atomic classical
// controller livelocks without routing repair; the naive shared-memory
// port loses and duplicates.
type X1Result struct {
	Rows    []X1Row
	SSMFPOK bool
	Table   *metrics.Table
}

// ExperimentX1 runs the three protocols on the same ring with the same
// routing loop and the same traffic.
func ExperimentX1(seed int64) X1Result {
	res := X1Result{}
	g := graph.Ring(6)
	const dest = 0

	// --- SSMFP from a corrupted configuration.
	ssmfpRes := func() X1Row {
		cfg := core.CleanConfig(g)
		cfg[2].(*core.Node).RT.Parent[dest] = 3
		cfg[3].(*core.Node).RT.Parent[dest] = 2 // loop 2↔3 toward dest
		cfg[3].(*core.Node).FW.Dests[dest].BufE = &core.Message{
			Payload: "x", LastHop: 3, Color: 0, UID: 1 << 40, Src: 3, Dest: dest, Valid: false}
		for p := 1; p < g.N(); p++ {
			cfg[p].(*core.Node).FW.Enqueue("x", dest) // colliding payloads
		}
		e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg)
		tr := checker.New(g)
		tr.RecordInitial(cfg)
		tr.Attach(e)
		_, terminal := e.Run(5_000_000, nil)
		return X1Row{
			Protocol:   "SSMFP",
			Delivered:  tr.DeliveredValid(),
			Lost:       len(tr.UndeliveredValid()),
			Violations: len(tr.Violations()),
			Stuck:      !terminal,
		}
	}()
	res.SSMFPOK = ssmfpRes.Lost == 0 && ssmfpRes.Violations == 0 && !ssmfpRes.Stuck

	// --- Classical atomic controller, same loop, no routing repair.
	atomicRow := func() X1Row {
		ts := baseline.CorrectTables(g)
		ts[2].Parent[dest] = 3
		ts[3].Parent[dest] = 2
		a := baseline.NewAtomic(g, ts, seed)
		for p := 1; p < g.N(); p++ {
			a.Enqueue(graph.ProcessID(p), "x", dest)
		}
		_, stopped := a.Run(100_000)
		return X1Row{
			Protocol:  "classical (atomic moves, no repair)",
			Delivered: len(a.Delivered()),
			Lost:      0,
			Stuck:     !stopped || a.Deadlocked(), // livelock or deadlock
		}
	}()

	// --- Naive shared-memory port with routing repair.
	naiveRow := func() X1Row {
		cfg := baseline.CleanConfig(g)
		cfg[2].(*baseline.Node).RT.Parent[dest] = 3
		cfg[3].(*baseline.Node).RT.Parent[dest] = 2
		cfg[3].(*baseline.Node).FW.Buf[dest] = &core.Message{
			Payload: "x", LastHop: 3, UID: 1 << 41, Src: 3, Dest: dest, Valid: false}
		for p := 1; p < g.N(); p++ {
			cfg[p].(*baseline.Node).FW.Enqueue("x", dest)
		}
		e := sm.NewEngine(g, baseline.NaiveFullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg)
		tr := checker.New(g)
		tr.Attach(e)
		_, terminal := e.Run(5_000_000, nil)
		return X1Row{
			Protocol:   "naive shared-memory port (no colors)",
			Delivered:  tr.DeliveredValid(),
			Lost:       len(tr.UndeliveredValid()),
			Violations: len(tr.Violations()),
			Stuck:      !terminal,
		}
	}()

	res.Rows = []X1Row{ssmfpRes, atomicRow, naiveRow}
	t := metrics.NewTable("E-X1: corrupted initial configuration — SSMFP vs classical controllers",
		"protocol", "valid delivered", "valid lost", "violations", "stuck (dead/livelock)")
	for _, r := range res.Rows {
		t.AddRow(r.Protocol, r.Delivered, r.Lost, r.Violations, r.Stuck)
	}
	res.Table = t
	return res
}

// --- E-X2: fault-free overhead ------------------------------------------

// X2Row is one topology's cost comparison in experiment E-X2.
type X2Row struct {
	Topology       string
	SSMFPMoves     float64 // forwarding moves per delivered message
	ClassicalMoves float64 // atomic moves per delivered message
	Overhead       float64
}

// X2Result quantifies the paper's closing claim: snap-stabilization without
// significant overcost with respect to the fault-free algorithm — the
// per-message move overhead of SSMFP over the classical atomic controller
// is a small constant (≈3×: copy + internal move + erase per hop instead
// of one atomic move).
type X2Result struct {
	Rows        []X2Row
	MaxOverhead float64
	Table       *metrics.Table
}

// ExperimentX2 runs identical permutation traffic fault-free on several
// topologies.
func ExperimentX2(seed int64) X2Result {
	res := X2Result{}
	t := metrics.NewTable("E-X2: fault-free moves per message — SSMFP vs classical controller",
		"topology", "SSMFP moves/msg", "classical moves/msg", "overhead")
	for i, g := range []*graph.Graph{graph.Line(6), graph.Ring(8), graph.Grid(3, 3), graph.Star(6)} {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		w := workload.Permutation(g, rng)

		r := Run(Scenario{
			Name:     "x2-ssmfp",
			Graph:    g,
			Daemon:   Synchronous,
			Seed:     seed + int64(i),
			Workload: w,
			MaxSteps: 4_000_000,
			NoRA:     true,
		})
		fwMoves := 0
		for base, c := range r.MovesByRule {
			if base != "A" {
				fwMoves += c
			}
		}

		a := baseline.NewAtomic(g, baseline.CorrectTables(g), seed+int64(i))
		for _, s := range w {
			a.Enqueue(s.Src, s.Payload, s.Dest)
		}
		a.Run(4_000_000)

		row := X2Row{Topology: g.String()}
		if r.DeliveredValid > 0 {
			row.SSMFPMoves = float64(fwMoves) / float64(r.DeliveredValid)
		}
		if len(a.Delivered()) > 0 {
			row.ClassicalMoves = float64(a.Moves()) / float64(len(a.Delivered()))
		}
		if row.ClassicalMoves > 0 {
			row.Overhead = row.SSMFPMoves / row.ClassicalMoves
		}
		if row.Overhead > res.MaxOverhead {
			res.MaxOverhead = row.Overhead
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.SSMFPMoves, row.ClassicalMoves, row.Overhead)
	}
	res.Table = t
	return res
}
