package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ssmfp/internal/baseline"
	"ssmfp/internal/buffergraph"
	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// correctTables builds the canonical routing tables for g.
func correctTables(g *graph.Graph) []*routing.NodeState {
	ts := make([]*routing.NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = routing.CorrectState(g, graph.ProcessID(p))
	}
	return ts
}

// Options parameterizes one experiment run explicitly. It replaces the
// SSMFP_PARANOID environment variable as the way paranoia reaches the
// engines an experiment constructs: the campaign runner executes many
// cells concurrently in one process, so per-run configuration must not
// live in process-global mutable state.
type Options struct {
	// Seed is the experiment's base seed; sweep cases derive their own
	// seeds from it by canonical case index, so a case produces the same
	// numbers whether it runs alone (one campaign cell) or inside the
	// full sweep.
	Seed int64

	// Paranoid turns the engine's differential self-check on for every
	// engine the experiment builds. False keeps the engine default (on
	// under `go test`, off otherwise) rather than forcing it off.
	Paranoid bool

	// Ctx, when non-nil, aborts long runs early when cancelled
	// (best-effort; checked at case boundaries and, inside scenario
	// runs, every few hundred steps).
	Ctx context.Context

	// Cases restricts a sweep experiment to the named canonical cases
	// (nil = all). Unknown names are ignored. Per-case seeds stay tied
	// to the canonical index, not the subset position.
	Cases []string

	// Shards > 1 runs every engine the experiment builds on the sharded
	// parallel step engine (statemodel.WithShards): guard evaluation and
	// non-adjacent action batches execute concurrently across Shards
	// workers. Executions — and therefore every deterministic quantity
	// in a campaign report — are bit-identical for any value; sharding
	// only changes wall-clock time.
	Shards int

	// OnCell, when non-nil, receives each case's measurements as the
	// case completes. The campaign runner collects per-cell quantities
	// through it without running anything twice.
	OnCell func(name string, m CellMeasure)
}

// engineOpts translates the options into engine construction options.
func (o Options) engineOpts() []sm.EngineOption {
	var opts []sm.EngineOption
	if o.Paranoid {
		opts = append(opts, sm.WithSelfCheck(true))
	}
	if o.Shards > 1 {
		opts = append(opts, sm.WithShards(o.Shards, o.Seed))
	}
	return opts
}

// wants reports whether the named case is selected.
func (o Options) wants(name string) bool {
	if len(o.Cases) == 0 {
		return true
	}
	for _, c := range o.Cases {
		if c == name {
			return true
		}
	}
	return false
}

// cancelled reports a best-effort context check at case boundaries.
func (o Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// report forwards one case's measurements to the OnCell hook.
func (o Options) report(name string, m CellMeasure) {
	if o.OnCell != nil {
		o.OnCell(name, m)
	}
}

// --- E-F1: Figure 1, destination-based buffer graph -------------------

// F1Result verifies the Figure 1 claims: with correct tables the
// destination-based buffer graph is acyclic and has n connected
// components, the one of destination d isomorphic to the routing tree T_d.
type F1Result struct {
	Acyclic    bool
	Components int
	AllTrees   bool
	Table      *metrics.Table
}

// ExperimentF1 reconstructs Figure 1 on the paper's 5-processor example
// network.
func ExperimentF1() F1Result {
	g := graph.Figure1Network()
	bg := buffergraph.DestinationBased(g, correctTables(g))
	res := F1Result{
		Acyclic:    bg.Acyclic(),
		Components: len(bg.Components()),
		AllTrees:   true,
	}
	t := metrics.NewTable("E-F1: destination-based buffer graph (Figure 1)",
		"destination", "buffers", "edges", "isomorphic to T_d")
	for d := 0; d < g.N(); d++ {
		sub := bg.Restrict(graph.ProcessID(d))
		isTree := bg.ComponentIsTree(graph.ProcessID(d))
		if !isTree {
			res.AllTrees = false
		}
		t.AddRow(d, sub.Size(), sub.EdgeCount(), isTree)
	}
	res.Table = t
	return res
}

// --- E-F2: Figure 2, SSMFP's two-buffer graph --------------------------

// F2Result verifies the Figure 2 structure and its corruption hazard: with
// correct tables the two-buffer graph is acyclic; with a routing loop it
// has a cycle (the deadlock hazard SSMFP tolerates while A repairs).
type F2Result struct {
	CleanAcyclic bool
	BuffersPerCC int
	CycleLen     int // length of the cycle found under corruption (0 = none)
	Table        *metrics.Table
}

// ExperimentF2 builds the SSMFP buffer graph for one destination of the
// Figure 3 network (destination b, as in the paper's Figure 2), then
// corrupts the tables to exhibit a cycle.
func ExperimentF2() F2Result {
	g := graph.Figure3Network()
	const destB = 1
	clean := buffergraph.SSMFP(g, correctTables(g))
	sub := clean.Restrict(destB)

	ts := correctTables(g)
	routing.CycleCorrupt(g, destB, 0, 2, ts) // a and c route at each other
	corrupt := buffergraph.SSMFP(g, ts)
	cycle := corrupt.Restrict(destB).FindCycle()

	res := F2Result{
		CleanAcyclic: sub.Acyclic(),
		BuffersPerCC: sub.Size(),
		CycleLen:     max(0, len(cycle)-1),
	}
	t := metrics.NewTable("E-F2: SSMFP buffer graph for destination b (Figure 2)",
		"tables", "buffers", "edges", "acyclic", "cycle length")
	t.AddRow("correct", sub.Size(), sub.EdgeCount(), sub.Acyclic(), 0)
	t.AddRow("corrupted (a↔c)", sub.Size(), corrupt.Restrict(destB).EdgeCount(),
		corrupt.Restrict(destB).Acyclic(), res.CycleLen)
	res.Table = t
	return res
}

// --- E-F4: Figure 4, caterpillar classification ------------------------

// F4Result reports the caterpillar census observed along an adversarial
// execution: all three types must occur, and every occupied buffer set must
// contain at least one caterpillar head (the progress witness of the
// proofs).
type F4Result struct {
	Seen        map[core.CaterpillarType]int
	AllTypesHit bool
	Consistent  bool
	Table       *metrics.Table
}

// ExperimentF4 runs a corrupted scenario on the Figure 1 network and
// classifies every buffer at every step.
func ExperimentF4(seed int64) F4Result {
	r, _ := ExperimentF4With(Options{Seed: seed})
	return r
}

// ExperimentF4With runs the caterpillar census with explicit options and
// reports the run's cell measurements alongside the result.
func ExperimentF4With(o Options) (F4Result, CellMeasure) {
	seed := o.Seed
	g := graph.Figure1Network()
	rng := rand.New(rand.NewSource(seed))
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	cfg[0].(*core.Node).FW.Enqueue("f4-probe", 4)
	cfg[3].(*core.Node).FW.Enqueue("f4-probe-2", 2)
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg, o.engineOpts()...)

	res := F4Result{Seen: make(map[core.CaterpillarType]int), Consistent: true}
	snapshot := func() []sm.State {
		out := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			out[p] = e.PeekStateOf(graph.ProcessID(p))
		}
		return out
	}
	for i := 0; i < 500_000; i++ {
		if i%1024 == 0 && o.cancelled() {
			break
		}
		cfgNow := snapshot()
		for d := 0; d < g.N(); d++ {
			census := core.CaterpillarCensus(g, cfgNow, graph.ProcessID(d))
			for typ, c := range census {
				res.Seen[typ] += c
			}
			total, _ := core.Occupancy(cfgNow, graph.ProcessID(d))
			heads := census[core.Type1] + census[core.Type2] + census[core.Type3]
			if total > 0 && heads == 0 {
				res.Consistent = false
			}
		}
		if !e.Step() {
			break
		}
	}
	res.AllTypesHit = res.Seen[core.Type1] > 0 && res.Seen[core.Type2] > 0 && res.Seen[core.Type3] > 0
	t := metrics.NewTable("E-F4: caterpillar census over an adversarial execution (Figure 4)",
		"type", "buffer observations")
	for _, typ := range []core.CaterpillarType{core.Type1, core.Type2, core.Type3} {
		t.AddRow(typ.String(), res.Seen[typ])
	}
	res.Table = t
	stats := e.Stats()
	return res, CellMeasure{
		Steps:      e.Steps(),
		Rounds:     e.Rounds(),
		GuardEvals: stats.GuardEvals,
		Extra: map[string]float64{
			"type1": float64(res.Seen[core.Type1]),
			"type2": float64(res.Seen[core.Type2]),
			"type3": float64(res.Seen[core.Type3]),
		},
	}
}

// --- E-P4: Proposition 4, ≤ 2n invalid deliveries ----------------------

// P4Row is one sweep point of experiment E-P4.
type P4Row struct {
	N              int
	InvalidPlaced  int
	MaxPerDest     int
	Bound          int
	TotalDelivered int
}

// P4Result sweeps network size with every buffer stuffed with invalid
// messages and verifies Proposition 4: at most 2n invalid messages are
// delivered per destination.
type P4Result struct {
	Rows        []P4Row
	WithinBound bool
	Table       *metrics.Table
}

// P4Sizes is the canonical size sweep of experiment E-P4.
var P4Sizes = []int{4, 6, 8, 10}

// p4Cell runs one size of the E-P4 sweep.
func p4Cell(o Options, n int) (P4Row, CellMeasure) {
	rng := rand.New(rand.NewSource(o.Seed + int64(n)))
	g := graph.RandomConnected(n, 2*n, rng)
	r := Run(Scenario{
		Name:  fmt.Sprintf("p4-n%d", n),
		Graph: g,
		Corrupt: &core.CorruptOptions{
			BufferFill:     1,
			CorruptRouting: true,
			CorruptQueues:  true,
		},
		Daemon:    Synchronous,
		Seed:      o.Seed + int64(n),
		MaxSteps:  5_000_000,
		NoRA:      true,
		Ctx:       o.Ctx,
		SelfCheck: o.Paranoid,
		Shards:    o.Shards,
	})
	row := P4Row{
		N:              n,
		InvalidPlaced:  2 * n * n,
		MaxPerDest:     r.MaxInvalidPerDst,
		Bound:          2 * n,
		TotalDelivered: r.InvalidDelivered,
	}
	m := measureOf(r)
	m.InvalidBound = row.Bound
	return row, m
}

// ExperimentP4 runs the invalid-delivery sweep.
func ExperimentP4(seed int64, sizes []int) P4Result {
	return ExperimentP4With(Options{Seed: seed}, sizes)
}

// ExperimentP4With runs the invalid-delivery sweep with explicit options.
func ExperimentP4With(o Options, sizes []int) P4Result {
	if len(sizes) == 0 {
		sizes = P4Sizes
	}
	res := P4Result{WithinBound: true}
	t := metrics.NewTable("E-P4: invalid deliveries per destination vs the 2n bound (Prop. 4)",
		"n", "invalid placed", "max delivered to one dest", "bound 2n", "total invalid delivered")
	for _, n := range sizes {
		if o.cancelled() {
			break
		}
		row, m := p4Cell(o, n)
		o.report(fmt.Sprintf("n%d", n), m)
		if row.MaxPerDest > row.Bound {
			res.WithinBound = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.N, row.InvalidPlaced, row.MaxPerDest, row.Bound, row.TotalDelivered)
	}
	res.Table = t
	return res
}

// --- E-P5: Proposition 5, delivery latency bound -----------------------

// P5Row is one sweep point of experiment E-P5.
type P5Row struct {
	Topology   string
	Delta, D   int
	MaxLatency int     // worst observed generation→delivery rounds
	Bound      float64 // Δ^D reference
}

// P5Result checks that worst-case delivery latency stays within the
// O(max(R_A, Δ^D)) bound of Proposition 5 and shows how observed latency
// grows with D and Δ.
type P5Result struct {
	Rows        []P5Row
	WithinBound bool
	Table       *metrics.Table
}

// topoCase is one named topology of a sweep; graphs are built lazily so
// enumerating the case list (for the campaign cell grid) costs nothing.
type topoCase struct {
	name string
	make func() *graph.Graph
}

// p5Cases is the canonical case list of E-P5: lines grow D at Δ=2, stars
// grow Δ at D=2. Per-case seeds are seed + canonical index.
func p5Cases() []topoCase {
	var cases []topoCase
	for _, n := range []int{3, 5, 7, 9} {
		n := n
		cases = append(cases, topoCase{fmt.Sprintf("line-%d", n), func() *graph.Graph { return graph.Line(n) }})
	}
	for _, n := range []int{4, 6, 8} {
		n := n
		cases = append(cases, topoCase{fmt.Sprintf("star-%d", n), func() *graph.Graph { return graph.Star(n) }})
	}
	return cases
}

// p5Cell runs one canonical case of the E-P5 sweep and reports whether it
// stayed within the (generously constant-factored) bound.
func p5Cell(o Options, idx int) (P5Row, bool, CellMeasure) {
	c := p5Cases()[idx]
	g := c.make()
	// Saturating cross-traffic: everyone sends to everyone once.
	w := workload.AllToAll(g, 1)
	r := Run(Scenario{
		Name:      "p5-" + c.name,
		Graph:     g,
		Corrupt:   &core.DefaultCorrupt,
		Daemon:    WeaklyFairLIFO,
		Seed:      o.Seed + int64(idx),
		Workload:  w,
		MaxSteps:  8_000_000,
		NoRA:      true,
		Ctx:       o.Ctx,
		SelfCheck: o.Paranoid,
		Shards:    o.Shards,
	})
	row := P5Row{
		Topology:   c.name,
		Delta:      g.MaxDegree(),
		D:          g.Diameter(),
		MaxLatency: int(r.LatencyRounds.Max),
		Bound:      math.Pow(float64(g.MaxDegree()), float64(g.Diameter())),
	}
	// The paper's bound is asymptotic; we check against a generous
	// constant multiple plus the routing-stabilization additive term.
	within := float64(row.MaxLatency) <= 40*(row.Bound+float64(4*g.N()))
	m := measureOf(r)
	m.MaxLatencyRounds = row.MaxLatency
	return row, within, m
}

// ExperimentP5 sweeps lines (growing D at Δ=2) and stars (growing Δ at
// D=2) under adversarial cross-traffic and a corrupted initial
// configuration.
func ExperimentP5(seed int64) P5Result {
	return ExperimentP5With(Options{Seed: seed})
}

// ExperimentP5With runs the E-P5 sweep with explicit options.
func ExperimentP5With(o Options) P5Result {
	res := P5Result{WithinBound: true}
	t := metrics.NewTable("E-P5: worst delivery latency vs Δ^D bound (Prop. 5)",
		"topology", "Δ", "D", "max latency (rounds)", "Δ^D")
	for i, c := range p5Cases() {
		if !o.wants(c.name) || o.cancelled() {
			continue
		}
		row, within, m := p5Cell(o, i)
		o.report(c.name, m)
		if !within {
			res.WithinBound = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.Delta, row.D, row.MaxLatency, row.Bound)
	}
	res.Table = t
	return res
}

// --- E-P6: Proposition 6, delay and waiting time -----------------------

// P6Row is one sweep point of experiment E-P6.
type P6Row struct {
	Topology   string
	Delta, D   int
	Delay      int // rounds before the probe's first R1
	MaxWaiting int // max rounds between consecutive R1s at the probe source
}

// P6Result measures the delay (rounds before the first emission) and the
// waiting time (rounds between consecutive emissions) at a busy processor.
type P6Result struct {
	Rows  []P6Row
	Table *metrics.Table
}

// p6Cases is the canonical case list of E-P6.
func p6Cases() []topoCase {
	return []topoCase{
		{"line-5", func() *graph.Graph { return graph.Line(5) }},
		{"star-6", func() *graph.Graph { return graph.Star(6) }},
		{"grid-3x3", func() *graph.Graph { return graph.Grid(3, 3) }},
	}
}

// p6Cell runs one canonical case of the E-P6 sweep.
func p6Cell(o Options, idx int) (P6Row, CellMeasure) {
	g := p6Cases()[idx].make()
	sink := graph.ProcessID(0)
	probe := graph.ProcessID(g.N() - 1)
	w := workload.AllToOne(g, sink, 2)
	// The probe source sends three extra messages so waiting time has
	// at least two intervals.
	w = append(w, workload.SinglePair(probe, sink, 3)...)
	r := Run(Scenario{
		Name:      fmt.Sprintf("p6-%d", idx),
		Graph:     g,
		Corrupt:   &core.DefaultCorrupt,
		Daemon:    CentralRandom,
		Seed:      o.Seed + int64(idx),
		Workload:  w,
		MaxSteps:  8_000_000,
		NoRA:      true,
		Ctx:       o.Ctx,
		SelfCheck: o.Paranoid,
		Shards:    o.Shards,
	})
	gens := r.GenRoundsBySource[probe]
	row := P6Row{Topology: g.String(), Delta: g.MaxDegree(), D: g.Diameter()}
	if len(gens) > 0 {
		row.Delay = gens[0]
		for j := 1; j < len(gens); j++ {
			if wait := gens[j] - gens[j-1]; wait > row.MaxWaiting {
				row.MaxWaiting = wait
			}
		}
	}
	m := measureOf(r)
	m.DelayRounds = row.Delay
	m.MaxWaitingRounds = row.MaxWaiting
	return row, m
}

// ExperimentP6 loads one source with k messages under all-to-one
// cross-traffic toward the same sink and measures its emission cadence.
func ExperimentP6(seed int64) P6Result {
	return ExperimentP6With(Options{Seed: seed})
}

// ExperimentP6With runs the E-P6 sweep with explicit options.
func ExperimentP6With(o Options) P6Result {
	res := P6Result{}
	t := metrics.NewTable("E-P6: delay and waiting time at a loaded source (Prop. 6)",
		"topology", "Δ", "D", "delay (rounds)", "max waiting (rounds)")
	for i, c := range p6Cases() {
		if !o.wants(c.name) || o.cancelled() {
			continue
		}
		row, m := p6Cell(o, i)
		o.report(c.name, m)
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.Delta, row.D, row.Delay, row.MaxWaiting)
	}
	res.Table = t
	return res
}

// --- E-P7: Proposition 7, amortized complexity Θ(D) --------------------

// P7Row is one sweep point of experiment E-P7.
type P7Row struct {
	D          int
	Rounds     int
	Deliveries int
	Amortized  float64
}

// P7Result verifies the amortized bound: rounds per delivered message grow
// (at most) linearly in D under saturation — the Θ(D) of Proposition 7,
// with 3D as the proof's reference constant.
type P7Result struct {
	Rows   []P7Row
	Fit    metrics.Fit
	Within bool // every point ≤ 3D + constant slack
	Table  *metrics.Table
}

// P7Diameters is the canonical diameter sweep of experiment E-P7.
var P7Diameters = []int{2, 4, 6, 8}

// p7Cell runs one diameter of the E-P7 sweep and reports whether the
// amortized cost stayed within the 3D (+ slack) reference.
func p7Cell(o Options, d int) (P7Row, bool, CellMeasure) {
	g := graph.Line(d + 1)
	w := workload.AllToOne(g, 0, 4)
	r := Run(Scenario{
		Name:      fmt.Sprintf("p7-d%d", d),
		Graph:     g,
		Corrupt:   nil, // amortized analysis is about steady state
		Daemon:    Synchronous,
		Seed:      o.Seed + int64(d),
		Workload:  w,
		MaxSteps:  8_000_000,
		NoRA:      true,
		Ctx:       o.Ctx,
		SelfCheck: o.Paranoid,
		Shards:    o.Shards,
	})
	deliveries := r.DeliveredValid + r.InvalidDelivered
	row := P7Row{D: d, Rounds: r.Rounds, Deliveries: deliveries}
	if deliveries > 0 {
		row.Amortized = float64(r.Rounds) / float64(deliveries)
	}
	m := measureOf(r)
	m.Extra = map[string]float64{"d": float64(d), "amortized": row.Amortized}
	return row, row.Amortized <= float64(3*d)+10, m
}

// ExperimentP7 saturates lines of growing diameter with all-to-one traffic.
func ExperimentP7(seed int64, diameters []int) P7Result {
	return ExperimentP7With(Options{Seed: seed}, diameters)
}

// ExperimentP7With runs the E-P7 sweep with explicit options.
func ExperimentP7With(o Options, diameters []int) P7Result {
	if len(diameters) == 0 {
		diameters = P7Diameters
	}
	res := P7Result{Within: true}
	t := metrics.NewTable("E-P7: amortized rounds per delivery vs D (Prop. 7)",
		"D", "rounds", "deliveries", "rounds/delivery", "3D reference")
	var xs, ys []float64
	for _, d := range diameters {
		if o.cancelled() {
			break
		}
		row, within, m := p7Cell(o, d)
		o.report(fmt.Sprintf("d%d", d), m)
		if !within {
			res.Within = false
		}
		res.Rows = append(res.Rows, row)
		xs = append(xs, float64(d))
		ys = append(ys, row.Amortized)
		t.AddRow(row.D, row.Rounds, row.Deliveries, row.Amortized, 3*d)
	}
	res.Fit = metrics.LinearFit(xs, ys)
	res.Table = t
	return res
}

// --- E-X1: SSMFP vs the classical baselines under corruption -----------

// X1Row is one protocol's outcome in experiment E-X1.
type X1Row struct {
	Protocol   string
	Delivered  int
	Lost       int
	Violations int  // duplications and other SP breaches observed
	Stuck      bool // deadlocked or livelocked
}

// X1Result contrasts SSMFP with the classical controllers from identical
// corrupted starting points: SSMFP satisfies SP; the atomic classical
// controller livelocks without routing repair; the naive shared-memory
// port loses and duplicates.
type X1Result struct {
	Rows    []X1Row
	SSMFPOK bool
	Table   *metrics.Table
}

// ExperimentX1 runs the three protocols on the same ring with the same
// routing loop and the same traffic.
func ExperimentX1(seed int64) X1Result {
	r, _ := ExperimentX1With(Options{Seed: seed})
	return r
}

// ExperimentX1With runs the comparison with explicit options.
func ExperimentX1With(o Options) (X1Result, CellMeasure) {
	seed := o.Seed
	res := X1Result{}
	g := graph.Ring(6)
	const dest = 0

	// --- SSMFP from a corrupted configuration.
	ssmfpRes := func() X1Row {
		cfg := core.CleanConfig(g)
		cfg[2].(*core.Node).RT.Parent[dest] = 3
		cfg[3].(*core.Node).RT.Parent[dest] = 2 // loop 2↔3 toward dest
		cfg[3].(*core.Node).FW.Dests[dest].BufE = &core.Message{
			Payload: "x", LastHop: 3, Color: 0, UID: 1 << 40, Src: 3, Dest: dest, Valid: false}
		for p := 1; p < g.N(); p++ {
			cfg[p].(*core.Node).FW.Enqueue("x", dest) // colliding payloads
		}
		e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg, o.engineOpts()...)
		tr := checker.New(g)
		tr.RecordInitial(cfg)
		tr.Attach(e)
		_, terminal := e.Run(5_000_000, nil)
		return X1Row{
			Protocol:   "SSMFP",
			Delivered:  tr.DeliveredValid(),
			Lost:       len(tr.UndeliveredValid()),
			Violations: len(tr.Violations()),
			Stuck:      !terminal,
		}
	}()
	res.SSMFPOK = ssmfpRes.Lost == 0 && ssmfpRes.Violations == 0 && !ssmfpRes.Stuck

	// --- Classical atomic controller, same loop, no routing repair.
	atomicRow := func() X1Row {
		ts := baseline.CorrectTables(g)
		ts[2].Parent[dest] = 3
		ts[3].Parent[dest] = 2
		a := baseline.NewAtomic(g, ts, seed)
		for p := 1; p < g.N(); p++ {
			a.Enqueue(graph.ProcessID(p), "x", dest)
		}
		_, stopped := a.Run(100_000)
		return X1Row{
			Protocol:  "classical (atomic moves, no repair)",
			Delivered: len(a.Delivered()),
			Lost:      0,
			Stuck:     !stopped || a.Deadlocked(), // livelock or deadlock
		}
	}()

	// --- Naive shared-memory port with routing repair.
	naiveRow := func() X1Row {
		cfg := baseline.CleanConfig(g)
		cfg[2].(*baseline.Node).RT.Parent[dest] = 3
		cfg[3].(*baseline.Node).RT.Parent[dest] = 2
		cfg[3].(*baseline.Node).FW.Buf[dest] = &core.Message{
			Payload: "x", LastHop: 3, UID: 1 << 41, Src: 3, Dest: dest, Valid: false}
		for p := 1; p < g.N(); p++ {
			cfg[p].(*baseline.Node).FW.Enqueue("x", dest)
		}
		e := sm.NewEngine(g, baseline.NaiveFullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg, o.engineOpts()...)
		tr := checker.New(g)
		tr.Attach(e)
		_, terminal := e.Run(5_000_000, nil)
		return X1Row{
			Protocol:   "naive shared-memory port (no colors)",
			Delivered:  tr.DeliveredValid(),
			Lost:       len(tr.UndeliveredValid()),
			Violations: len(tr.Violations()),
			Stuck:      !terminal,
		}
	}()

	res.Rows = []X1Row{ssmfpRes, atomicRow, naiveRow}
	t := metrics.NewTable("E-X1: corrupted initial configuration — SSMFP vs classical controllers",
		"protocol", "valid delivered", "valid lost", "violations", "stuck (dead/livelock)")
	for _, r := range res.Rows {
		t.AddRow(r.Protocol, r.Delivered, r.Lost, r.Violations, r.Stuck)
	}
	res.Table = t
	return res, CellMeasure{
		DeliveredValid: ssmfpRes.Delivered,
		Extra: map[string]float64{
			"ssmfp_violations": float64(ssmfpRes.Violations),
			"ssmfp_lost":       float64(ssmfpRes.Lost),
		},
	}
}

// --- E-X2: fault-free overhead ------------------------------------------

// X2Row is one topology's cost comparison in experiment E-X2.
type X2Row struct {
	Topology       string
	SSMFPMoves     float64 // forwarding moves per delivered message
	ClassicalMoves float64 // atomic moves per delivered message
	Overhead       float64
}

// X2Result quantifies the paper's closing claim: snap-stabilization without
// significant overcost with respect to the fault-free algorithm — the
// per-message move overhead of SSMFP over the classical atomic controller
// is a small constant (≈3×: copy + internal move + erase per hop instead
// of one atomic move).
type X2Result struct {
	Rows        []X2Row
	MaxOverhead float64
	Table       *metrics.Table
}

// x2Cases is the canonical case list of E-X2.
func x2Cases() []topoCase {
	return []topoCase{
		{"line-6", func() *graph.Graph { return graph.Line(6) }},
		{"ring-8", func() *graph.Graph { return graph.Ring(8) }},
		{"grid-3x3", func() *graph.Graph { return graph.Grid(3, 3) }},
		{"star-6", func() *graph.Graph { return graph.Star(6) }},
	}
}

// x2Cell runs one topology of the E-X2 comparison.
func x2Cell(o Options, idx int) (X2Row, CellMeasure) {
	g := x2Cases()[idx].make()
	rng := rand.New(rand.NewSource(o.Seed + int64(idx)))
	w := workload.Permutation(g, rng)

	r := Run(Scenario{
		Name:      "x2-ssmfp",
		Graph:     g,
		Daemon:    Synchronous,
		Seed:      o.Seed + int64(idx),
		Workload:  w,
		MaxSteps:  4_000_000,
		NoRA:      true,
		Ctx:       o.Ctx,
		SelfCheck: o.Paranoid,
		Shards:    o.Shards,
	})
	fwMoves := 0
	for base, c := range r.MovesByRule {
		if base != "A" {
			fwMoves += c
		}
	}

	a := baseline.NewAtomic(g, baseline.CorrectTables(g), o.Seed+int64(idx))
	for _, s := range w {
		a.Enqueue(s.Src, s.Payload, s.Dest)
	}
	a.Run(4_000_000)

	row := X2Row{Topology: g.String()}
	if r.DeliveredValid > 0 {
		row.SSMFPMoves = float64(fwMoves) / float64(r.DeliveredValid)
	}
	if len(a.Delivered()) > 0 {
		row.ClassicalMoves = float64(a.Moves()) / float64(len(a.Delivered()))
	}
	if row.ClassicalMoves > 0 {
		row.Overhead = row.SSMFPMoves / row.ClassicalMoves
	}
	m := measureOf(r)
	m.Extra = map[string]float64{"overhead": row.Overhead}
	return row, m
}

// ExperimentX2 runs identical permutation traffic fault-free on several
// topologies.
func ExperimentX2(seed int64) X2Result {
	return ExperimentX2With(Options{Seed: seed})
}

// ExperimentX2With runs the E-X2 comparison with explicit options.
func ExperimentX2With(o Options) X2Result {
	res := X2Result{}
	t := metrics.NewTable("E-X2: fault-free moves per message — SSMFP vs classical controller",
		"topology", "SSMFP moves/msg", "classical moves/msg", "overhead")
	for i, c := range x2Cases() {
		if !o.wants(c.name) || o.cancelled() {
			continue
		}
		row, m := x2Cell(o, i)
		o.report(c.name, m)
		if row.Overhead > res.MaxOverhead {
			res.MaxOverhead = row.Overhead
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.SSMFPMoves, row.ClassicalMoves, row.Overhead)
	}
	res.Table = t
	return res
}
