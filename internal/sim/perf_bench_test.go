package sim

import (
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// benchEngine measures raw engine throughput (steps/sec) on a saturated
// composed system — the performance envelope of the reproduction itself,
// not a paper artifact.
func benchEngine(b *testing.B, g *graph.Graph, kind DaemonKind) {
	b.ReportAllocs()
	steps := 0
	for i := 0; i < b.N; i++ {
		cfg := core.CleanConfig(g)
		e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(kind, int64(i), g.N()), cfg)
		in := workload.NewInjector(workload.AllToAll(g, 1),
			func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })
		in.Tick(e)
		for e.Step() {
			steps++
		}
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

func BenchmarkEngineGrid3x3Synchronous(b *testing.B) {
	benchEngine(b, graph.Grid(3, 3), Synchronous)
}

func BenchmarkEngineGrid4x4Synchronous(b *testing.B) {
	benchEngine(b, graph.Grid(4, 4), Synchronous)
}

func BenchmarkEngineGrid4x4CentralRandom(b *testing.B) {
	benchEngine(b, graph.Grid(4, 4), CentralRandom)
}

func BenchmarkEngineRing16Distributed(b *testing.B) {
	benchEngine(b, graph.Ring(16), Distributed)
}

// BenchmarkEnabledComputation isolates the per-step guard sweep, the
// engine's hot path (n processors × 7n rules).
func BenchmarkEnabledComputation(b *testing.B) {
	g := graph.Grid(4, 4)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("x", 15)
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(Synchronous, 1, g.N()), cfg)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(e.Enabled()) == 0 {
			b.Fatal("expected enabled rules")
		}
	}
}

// benchEngineMode measures steps/sec of the composed system with the
// enabled-set strategy pinned, isolating the incremental engine's payoff.
func benchEngineMode(b *testing.B, g *graph.Graph, incremental bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.CleanConfig(g)
		e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, int64(i), g.N()), cfg,
			sm.WithIncremental(incremental), sm.WithSelfCheck(false))
		in := workload.NewInjector(workload.SinglePair(0, graph.ProcessID(g.N()-1), 2),
			func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })
		in.Tick(e)
		e.Run(50, nil)
	}
}

func BenchmarkEngineGrid10x10Naive(b *testing.B) {
	benchEngineMode(b, graph.Grid(10, 10), false)
}

func BenchmarkEngineGrid10x10Incremental(b *testing.B) {
	benchEngineMode(b, graph.Grid(10, 10), true)
}

func BenchmarkEngineGrid20x20Naive(b *testing.B) {
	benchEngineMode(b, graph.Grid(20, 20), false)
}

func BenchmarkEngineGrid20x20Incremental(b *testing.B) {
	benchEngineMode(b, graph.Grid(20, 20), true)
}
