package sim

import (
	"fmt"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/msgpass"
)

// X3Row is one configuration of the message-passing experiment.
type X3Row struct {
	Config      string
	Sent        int
	Delivered   int
	Duplicates  int
	WallTime    time.Duration
	ExactlyOnce bool
}

// X3Result exercises the message-passing port (the paper's open problem,
// §4): the same exactly-once guarantee on real asynchronous channels, with
// corrupted initial state and lossy links.
type X3Result struct {
	Rows  []X3Row
	AllOK bool
	Table *metrics.Table
}

// ExperimentX3 runs the port in three regimes: clean, corrupted initial
// state, and corrupted + 20% frame loss.
func ExperimentX3(seed int64) X3Result {
	res := X3Result{AllOK: true}
	t := metrics.NewTable("E-X3: message-passing port (goroutines + channels)",
		"configuration", "sent", "delivered", "duplicates", "wall time", "exactly once")
	configs := []struct {
		name string
		opts msgpass.Options
	}{
		{"clean", msgpass.Options{Seed: seed}},
		{"corrupted init", msgpass.Options{Seed: seed + 1, CorruptInit: true}},
		{"corrupted + 20% loss", msgpass.Options{Seed: seed + 2, CorruptInit: true, LossRate: 0.2}},
	}
	for _, c := range configs {
		g := graph.Grid(3, 3)
		nw := msgpass.New(g, c.opts)
		nw.Start()
		want := make(map[uint64]graph.ProcessID)
		for src := 0; src < g.N(); src++ {
			dst := graph.ProcessID((src + 4) % g.N())
			uid := nw.Send(graph.ProcessID(src), fmt.Sprintf("x3-%s-%d", c.name, src), dst)
			want[uid] = dst
		}
		start := time.Now()
		// Wait for all valid deliveries (invalid planted junk also flows).
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			valid := 0
			for _, d := range nw.Deliveries() {
				if d.Msg.Valid {
					valid++
				}
			}
			if valid >= len(want) {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		wall := time.Since(start)
		counts := make(map[uint64]int)
		for _, d := range nw.Deliveries() {
			if d.Msg.Valid {
				counts[d.Msg.UID]++
			}
		}
		nw.Stop()

		row := X3Row{Config: c.name, Sent: len(want), WallTime: wall.Round(time.Millisecond), ExactlyOnce: true}
		for uid := range want {
			if counts[uid] >= 1 {
				row.Delivered++
			}
			if counts[uid] > 1 {
				row.Duplicates += counts[uid] - 1
				row.ExactlyOnce = false
			}
		}
		if row.Delivered != row.Sent {
			row.ExactlyOnce = false
		}
		if !row.ExactlyOnce {
			res.AllOK = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Config, row.Sent, row.Delivered, row.Duplicates, row.WallTime.String(), row.ExactlyOnce)
	}
	res.Table = t
	return res
}
