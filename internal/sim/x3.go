package sim

import (
	"fmt"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/msgpass"
)

// X3Row is one configuration of the message-passing experiment.
type X3Row struct {
	Config      string
	Sent        int
	Delivered   int
	Duplicates  int
	WallTime    time.Duration
	ExactlyOnce bool
}

// X3Result exercises the message-passing port (the paper's open problem,
// §4): the same exactly-once guarantee on real asynchronous channels, with
// corrupted initial state and lossy links.
type X3Result struct {
	Rows  []X3Row
	AllOK bool
	Table *metrics.Table
}

// x3Case is one regime of the message-passing experiment. The opts
// constructor keeps the legacy seed offsets (seed, seed+1, seed+2) so the
// regimes stay independent of which subset runs.
type x3Case struct {
	slug    string
	display string
	opts    func(seed int64) msgpass.Options
}

func x3Cases() []x3Case {
	return []x3Case{
		{"clean", "clean", func(s int64) msgpass.Options { return msgpass.Options{Seed: s} }},
		{"corrupt", "corrupted init", func(s int64) msgpass.Options { return msgpass.Options{Seed: s + 1, CorruptInit: true} }},
		{"corrupt-loss20", "corrupted + 20% loss", func(s int64) msgpass.Options {
			return msgpass.Options{Seed: s + 2, CorruptInit: true, LossRate: 0.2}
		}},
	}
}

// x3Cell runs one regime of E-X3 on a 3x3 grid. Wall time is inherently
// nondeterministic (real goroutines and channels); the deterministic part
// of the measure is the delivery accounting.
func x3Cell(o Options, idx int) (X3Row, CellMeasure) {
	c := x3Cases()[idx]
	g := graph.Grid(3, 3)
	nw := msgpass.New(g, c.opts(o.Seed))
	nw.Start()
	want := make(map[uint64]graph.ProcessID)
	for src := 0; src < g.N(); src++ {
		dst := graph.ProcessID((src + 4) % g.N())
		uid, _ := nw.Send(graph.ProcessID(src), fmt.Sprintf("x3-%s-%d", c.display, src), dst)
		want[uid] = dst
	}
	start := time.Now()
	// Wait for all valid deliveries (invalid planted junk also flows).
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if o.cancelled() {
			break
		}
		valid := 0
		for _, d := range nw.Deliveries() {
			if d.Msg.Valid {
				valid++
			}
		}
		if valid >= len(want) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	wall := time.Since(start)
	counts := make(map[uint64]int)
	for _, d := range nw.Deliveries() {
		if d.Msg.Valid {
			counts[d.Msg.UID]++
		}
	}
	nw.Stop()

	row := X3Row{Config: c.display, Sent: len(want), WallTime: wall.Round(time.Millisecond), ExactlyOnce: true}
	for uid := range want {
		if counts[uid] >= 1 {
			row.Delivered++
		}
		if counts[uid] > 1 {
			row.Duplicates += counts[uid] - 1
			row.ExactlyOnce = false
		}
	}
	if row.Delivered != row.Sent {
		row.ExactlyOnce = false
	}
	m := CellMeasure{
		Generated:      row.Sent,
		DeliveredValid: row.Delivered,
		Extra:          map[string]float64{"duplicates": float64(row.Duplicates)},
	}
	return row, m
}

// ExperimentX3 runs the port in three regimes: clean, corrupted initial
// state, and corrupted + 20% frame loss.
func ExperimentX3(seed int64) X3Result {
	return ExperimentX3With(Options{Seed: seed})
}

// ExperimentX3With runs E-X3 with explicit options; Options.Cases uses the
// slugs clean, corrupt, corrupt-loss20.
func ExperimentX3With(o Options) X3Result {
	res := X3Result{AllOK: true}
	t := metrics.NewTable("E-X3: message-passing port (goroutines + channels)",
		"configuration", "sent", "delivered", "duplicates", "wall time", "exactly once")
	for i, c := range x3Cases() {
		if !o.wants(c.slug) || o.cancelled() {
			continue
		}
		row, m := x3Cell(o, i)
		o.report(c.slug, m)
		if !row.ExactlyOnce {
			res.AllOK = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Config, row.Sent, row.Delivered, row.Duplicates, row.WallTime.String(), row.ExactlyOnce)
	}
	res.Table = t
	return res
}
