package sim

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/acyclic"
	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/faults"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// --- E-X4: buffer economy of the §4 alternative scheme -----------------

// X4Row compares per-node buffer budgets across schemes for one topology.
type X4Row struct {
	Topology    string
	N           int
	SSMFP       int     // 2n buffers per node (bufR+bufE per destination)
	DestBased   int     // n buffers per node (Figure 1 scheme)
	AcyclicK    int     // k buffers per node (orientation cover)
	Stretch     float64 // average path length / average shortest distance
	Drained     bool    // the k-buffer controller delivered everything
	ExactlyOnce bool
}

// X4Result quantifies the conclusion's discussion: the acyclic-covering
// buffer graph needs far fewer buffers (3 for a ring, 2 for a tree), at
// the price of general applicability (NP-hard minimal rank; our
// alternating cover is an upper bound) and sometimes path stretch
// (clockwise-only ring routing).
type X4Result struct {
	Rows  []X4Row
	AllOK bool
	Table *metrics.Table
}

// x4Case is one scheme/topology case of E-X4. The slug is the campaign
// cell variant; the display name keeps the legacy table labels.
type x4Case struct {
	slug    string
	display string
	make    func(seed int64) (*graph.Graph, *acyclic.Cover, []*routing.NodeState)
}

// x4Cases is the canonical case list of E-X4.
func x4Cases() []x4Case {
	return []x4Case{
		{"ring-8", "ring-8 (clockwise)", func(int64) (*graph.Graph, *acyclic.Cover, []*routing.NodeState) {
			g := graph.Ring(8)
			return g, acyclic.RingCover(g), acyclic.ClockwiseRingTables(g)
		}},
		{"tree-15", "tree-15 (minimal)", func(int64) (*graph.Graph, *acyclic.Cover, []*routing.NodeState) {
			g := graph.BinaryTree(15)
			return g, acyclic.TreeCover(g, 0), correctTables(g)
		}},
		{"grid-3x3", "grid-3x3 (alternating)", func(int64) (*graph.Graph, *acyclic.Cover, []*routing.NodeState) {
			g := graph.Grid(3, 3)
			ts := correctTables(g)
			c, err := acyclic.AlternatingCover(g, ts)
			if err != nil {
				panic(err)
			}
			return g, c, ts
		}},
		{"random-10", "random-10 (alternating)", func(seed int64) (*graph.Graph, *acyclic.Cover, []*routing.NodeState) {
			rng := rand.New(rand.NewSource(seed))
			g := graph.RandomConnected(10, 20, rng)
			ts := correctTables(g)
			c, err := acyclic.AlternatingCover(g, ts)
			if err != nil {
				panic(err)
			}
			return g, c, ts
		}},
	}
}

// x4Cell runs one canonical case of E-X4.
func x4Cell(o Options, idx int) (X4Row, CellMeasure) {
	c := x4Cases()[idx]
	g, cover, tables := c.make(o.Seed)
	ctrl := acyclic.NewController(cover, tables, o.Seed+int64(idx))
	rng := rand.New(rand.NewSource(o.Seed + int64(idx)))
	w := workload.Permutation(g, rng)
	var pathLen, shortest int
	for _, s := range w {
		ctrl.Enqueue(s.Src, s.Payload, s.Dest)
		pathLen += tableDistance(tables, s.Src, s.Dest)
		shortest += g.Dist(s.Src, s.Dest)
	}
	_, stopped := ctrl.Run(4_000_000)
	seen := map[uint64]int{}
	for _, p := range ctrl.Delivered() {
		seen[p.UID]++
	}
	exactlyOnce := len(seen) == len(w)
	for _, n := range seen {
		if n != 1 {
			exactlyOnce = false
		}
	}
	row := X4Row{
		Topology:    c.display,
		N:           g.N(),
		SSMFP:       2 * g.N(),
		DestBased:   g.N(),
		AcyclicK:    cover.Size(),
		Drained:     stopped && ctrl.Quiescent(),
		ExactlyOnce: exactlyOnce,
	}
	if shortest > 0 {
		row.Stretch = float64(pathLen) / float64(shortest)
	}
	return row, CellMeasure{
		Generated:      len(w),
		DeliveredValid: len(seen),
		Extra:          map[string]float64{"cover_k": float64(cover.Size()), "stretch": row.Stretch},
	}
}

// ExperimentX4 runs permutation traffic through the level-buffer
// controller on a ring (specialized 3-cover, clockwise routing), a tree
// (2-cover, minimal routing), and general graphs (alternating cover).
func ExperimentX4(seed int64) X4Result {
	return ExperimentX4With(Options{Seed: seed})
}

// ExperimentX4With runs the E-X4 sweep with explicit options; case names
// in Options.Cases use the slugs (ring-8, tree-15, grid-3x3, random-10).
func ExperimentX4With(o Options) X4Result {
	res := X4Result{AllOK: true}
	t := metrics.NewTable("E-X4: buffers per node — SSMFP vs destination-based vs acyclic cover (§4)",
		"topology", "n", "SSMFP (2n)", "dest-based (n)", "acyclic cover (k)", "path stretch", "exactly once")
	for i, c := range x4Cases() {
		if !o.wants(c.slug) || o.cancelled() {
			continue
		}
		row, m := x4Cell(o, i)
		o.report(c.slug, m)
		if !row.Drained || !row.ExactlyOnce {
			res.AllOK = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.N, row.SSMFP, row.DestBased, row.AcyclicK, row.Stretch, row.ExactlyOnce)
	}
	res.Table = t
	return res
}

// tableDistance follows the tables, counting hops.
func tableDistance(tables []*routing.NodeState, p, d graph.ProcessID) int {
	hops := 0
	for p != d {
		p = tables[p].NextHop(d)
		hops++
		if hops > 10_000 {
			panic("sim: routing loop in tableDistance")
		}
	}
	return hops
}

// --- E-X5: choice_p(d) policy ablation ----------------------------------

// X5Row is one policy's outcome.
type X5Row struct {
	Policy        string
	AllDelivered  bool
	ProbeDelivery int // step at which the lone probe message arrived
	MaxLatency    int // worst latency (rounds) across all messages
}

// X5Result ablates the fair selection scheme behind choice_p(d) — the
// paper's conclusion suggests modifying it to improve the worst case, and
// its fairness requirement exists to prevent starvation. The probe is one
// message from the highest-ID leaf of a star whose other leaves hammer
// the center; an unfair policy serves it last (or never, under sustained
// load), the fair policies serve it within the Δ+1 passing bound.
type X5Result struct {
	Rows  []X5Row
	Table *metrics.Table
}

// x5Policies is the canonical policy list of E-X5; Options.Cases and the
// campaign cell variants use the policies' String() names.
func x5Policies() []core.ChoicePolicy {
	return []core.ChoicePolicy{core.PolicyQueue, core.PolicyRotating, core.PolicyLowestID}
}

// x5Cell runs the loaded star under one policy.
func x5Cell(o Options, policy core.ChoicePolicy) (X5Row, CellMeasure) {
	g := graph.Star(6)
	cfg := core.CleanConfig(g)
	for leaf := graph.ProcessID(1); leaf <= 4; leaf++ {
		for k := 0; k < 10; k++ {
			cfg[leaf].(*core.Node).FW.Enqueue(fmt.Sprintf("bulk-%d-%d", leaf, k), 0)
		}
	}
	cfg[5].(*core.Node).FW.Enqueue("probe", 0)

	e := sm.NewEngine(g, core.FullProgramWithPolicy(g, policy), NewDaemon(CentralRandom, o.Seed, g.N()), cfg, o.engineOpts()...)
	tr := checker.New(g)
	tr.Attach(e)
	probeStep := -1
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind == core.KindDeliver && ev.Payload.(core.DeliverEvent).Msg.Payload == "probe" {
			probeStep = ev.Step
		}
	})
	e.Run(4_000_000, nil)

	row := X5Row{
		Policy:        policy.String(),
		AllDelivered:  tr.AllValidDelivered() && len(tr.Violations()) == 0,
		ProbeDelivery: probeStep,
	}
	for _, l := range tr.LatencyRounds() {
		if l > row.MaxLatency {
			row.MaxLatency = l
		}
	}
	stats := e.Stats()
	return row, CellMeasure{
		Steps:            e.Steps(),
		Rounds:           e.Rounds(),
		GuardEvals:       stats.GuardEvals,
		DeliveredValid:   tr.DeliveredValid(),
		MaxLatencyRounds: row.MaxLatency,
		Extra:            map[string]float64{"probe_step": float64(probeStep)},
	}
}

// ExperimentX5 runs the same loaded star under each policy.
func ExperimentX5(seed int64) X5Result {
	return ExperimentX5With(Options{Seed: seed})
}

// ExperimentX5With runs the policy ablation with explicit options.
func ExperimentX5With(o Options) X5Result {
	res := X5Result{}
	t := metrics.NewTable("E-X5: choice policy ablation on a loaded star (§4 future work)",
		"policy", "all delivered", "probe delivered at step", "max latency (rounds)")
	for _, policy := range x5Policies() {
		if !o.wants(policy.String()) || o.cancelled() {
			continue
		}
		row, m := x5Cell(o, policy)
		o.report(policy.String(), m)
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Policy, row.AllDelivered, row.ProbeDelivery, row.MaxLatency)
	}
	res.Table = t
	return res
}

// --- E-X6: transient faults mid-execution -------------------------------

// X6Row is one fault-storm configuration.
type X6Row struct {
	Waves       int
	Compromised int
	PostFaultOK bool
	Violations  int
}

// X6Result demonstrates the defining property of snap-stabilization with
// mid-run transient faults instead of a corrupted time zero: after every
// strike, newly generated messages are still delivered exactly once.
type X6Result struct {
	Rows  []X6Row
	AllOK bool
	Table *metrics.Table
}

// X6Waves is the canonical storm-intensity sweep of E-X6; campaign cell
// variants are "w<waves>".
var X6Waves = []int{1, 3, 6}

// x6Cell runs one fault-storm intensity.
func x6Cell(o Options, waves int) (X6Row, CellMeasure) {
	seed := o.Seed
	rng := rand.New(rand.NewSource(seed + int64(waves)))
	g := graph.Grid(3, 3)
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg, o.engineOpts()...)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	in := faults.NewInjector(g, seed+int64(waves), nil)

	for wave := 0; wave < waves; wave++ {
		for k := 0; k < 4; k++ {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("w%d-%d", wave, k), dst)
		}
		// Strike while the wave is still in flight.
		for i := 0; i < 15; i++ {
			e.Step()
		}
		tr.MarkCompromised(faults.InFlightValid(e, g)...)
		tr.MarkCompromised(in.Strike(e, 4)...)
		faults.RearmRequests(e, g)
	}
	for k := 0; k < 4; k++ {
		src := graph.ProcessID(rng.Intn(g.N()))
		dst := graph.ProcessID(rng.Intn(g.N()))
		e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("final-%d", k), dst)
	}
	_, terminal := e.Run(4_000_000, nil)

	row := X6Row{
		Waves:       waves,
		Compromised: tr.Compromised(),
		PostFaultOK: terminal && tr.AllValidDelivered(),
		Violations:  len(tr.Violations()),
	}
	stats := e.Stats()
	return row, CellMeasure{
		Steps:          e.Steps(),
		Rounds:         e.Rounds(),
		GuardEvals:     stats.GuardEvals,
		Generated:      tr.GeneratedCount(),
		DeliveredValid: tr.DeliveredValid(),
		Extra:          map[string]float64{"compromised": float64(row.Compromised)},
	}
}

// ExperimentX6 runs fault storms of growing intensity.
func ExperimentX6(seed int64) X6Result {
	return ExperimentX6With(Options{Seed: seed})
}

// ExperimentX6With runs the fault-storm sweep with explicit options.
func ExperimentX6With(o Options) X6Result {
	res := X6Result{AllOK: true}
	t := metrics.NewTable("E-X6: transient fault storms (snap-stabilization mid-run)",
		"fault waves", "messages compromised by faults", "post-fault exactly-once", "violations")
	for _, waves := range X6Waves {
		if !o.wants(fmt.Sprintf("w%d", waves)) || o.cancelled() {
			continue
		}
		row, m := x6Cell(o, waves)
		o.report(fmt.Sprintf("w%d", waves), m)
		if !row.PostFaultOK || row.Violations > 0 {
			res.AllOK = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Waves, row.Compromised, row.PostFaultOK, row.Violations)
	}
	res.Table = t
	return res
}
