package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/faults"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// TestChaosEverythingAtOnce is the integrative stress test: a corrupted
// 4×4 grid under the distributed daemon with the rotating choice policy,
// traffic dripping in throughout, transient fault strikes between waves,
// the well-typedness invariant probed continuously, and the full SP oracle
// at the end. Every adversarial knob the repository has, turned at once.
func TestChaosEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const seed = 1337
	rng := rand.New(rand.NewSource(seed))
	g := graph.Grid(4, 4)
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	e := sm.NewEngine(g, core.FullProgramWithPolicy(g, core.PolicyRotating),
		NewDaemon(Distributed, seed, g.N()), cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	injector := faults.NewInjector(g, seed, nil)

	w := workload.HotSpot(g, 0, 1, rng)
	in := workload.NewInjector(w.Staggered(9),
		func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })

	snapshot := func() []sm.State {
		out := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			out[p] = e.StateOf(graph.ProcessID(p))
		}
		return out
	}

	strikes := 0
	for i := 0; i < 8_000_000; i++ {
		in.Tick(e)
		if i > 0 && i%120 == 0 && strikes < 5 {
			tr.MarkCompromised(faults.InFlightValid(e, g)...)
			tr.MarkCompromised(injector.Strike(e, 3)...)
			faults.RearmRequests(e, g)
			strikes++
		}
		if i%128 == 0 {
			if err := checker.WellTyped(g, snapshot()); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if !e.Step() {
			if in.Done() {
				break
			}
			in.SkipWait(e)
		}
	}
	if !e.Terminal() {
		t.Fatal("chaos run did not quiesce")
	}
	if v := tr.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if !tr.AllValidDelivered() {
		t.Fatalf("undelivered non-compromised messages: %v", tr.UndeliveredValid())
	}
	if strikes < 3 || tr.Compromised() == 0 {
		t.Fatal("chaos should have struck and compromised something")
	}
	// Post-chaos epilogue: one more guaranteed wave on the battered system.
	for k := 0; k < 6; k++ {
		src := graph.ProcessID(rng.Intn(g.N()))
		dst := graph.ProcessID(rng.Intn(g.N()))
		e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("epilogue-%d", k), dst)
	}
	if _, terminal := e.Run(4_000_000, nil); !terminal {
		t.Fatal("epilogue did not quiesce")
	}
	if v := tr.Violations(); len(v) > 0 || !tr.AllValidDelivered() {
		t.Fatalf("epilogue failed: violations=%v undelivered=%v", v, tr.UndeliveredValid())
	}
	t.Logf("chaos: %d steps, %d strikes, %d compromised, %d generated, %d invalid surfaced",
		e.Steps(), strikes, tr.Compromised(), tr.GeneratedCount(), tr.InvalidDeliveredTotal())
}
