// Package sim composes the whole reproduction into runnable scenarios and
// experiments: topology + initial configuration (clean or adversarial) +
// daemon + workload, executed on the state-model engine with the
// specification oracles attached, yielding a structured Result. The
// experiment drivers (experiments.go, figure3.go) regenerate every figure
// and proposition of the paper; cmd/ssmfp-bench prints their tables and
// bench_test.go turns each into a testing.B benchmark.
package sim

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/obs"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/trace"
	"ssmfp/internal/workload"
)

// DaemonKind selects a scheduler for a scenario.
type DaemonKind string

// The daemon menu of the experiments.
const (
	Synchronous       DaemonKind = "synchronous"
	CentralRandom     DaemonKind = "central-random"
	CentralRoundRobin DaemonKind = "central-round-robin"
	Distributed       DaemonKind = "distributed-random"
	WeaklyFairLIFO    DaemonKind = "weakly-fair-lifo"
)

// NewDaemon instantiates a daemon of the given kind. n is the network size
// (used to scale the weak-fairness bound).
func NewDaemon(kind DaemonKind, seed int64, n int) sm.Daemon {
	switch kind {
	case Synchronous:
		return daemon.NewSynchronous(seed)
	case CentralRandom:
		return daemon.NewCentralRandom(seed)
	case CentralRoundRobin:
		return daemon.NewCentralRoundRobin()
	case Distributed:
		return daemon.NewDistributedRandom(seed, 0.5)
	case WeaklyFairLIFO:
		return daemon.NewWeaklyFair(daemon.NewCentralLIFO(), 4*n)
	default:
		panic(fmt.Sprintf("sim: unknown daemon kind %q", kind))
	}
}

// Scenario describes one run.
type Scenario struct {
	Name     string
	Graph    *graph.Graph
	Corrupt  *core.CorruptOptions // nil = clean initial configuration
	Daemon   DaemonKind
	Seed     int64
	Workload workload.Workload
	MaxSteps int               // safety cap; 0 = 10 million
	NoRA     bool              // skip per-step routing-correctness probing (faster)
	Policy   core.ChoicePolicy // choice_p(d) policy (default: the paper's FIFO queue)

	// Ctx, when non-nil, aborts the run early when cancelled; the check
	// is amortized (every few hundred steps), so cancellation is prompt
	// but not exact. Result.Interrupted reports an abort.
	Ctx context.Context

	// SelfCheck forces the engine's differential self-check on — the
	// explicit, per-run replacement for the SSMFP_PARANOID environment
	// variable (campaign workers run in one process; an env var would be
	// shared mutable state across concurrent cells). False leaves the
	// engine's default (on under `go test`, off otherwise).
	SelfCheck bool

	// Shards > 1 runs the scenario on the sharded parallel step engine
	// (seeded from Seed). Bit-identical to a serial run at any value;
	// only wall-clock time changes.
	Shards int

	// Monitors are invariant probes evaluated on the configuration before
	// every step (and once at the end); the first error aborts the run and
	// is reported in Result.MonitorErr. MonitorEvery thins the probing to
	// every k-th step (0 or 1 = every step) for expensive monitors.
	Monitors     []Monitor
	MonitorEvery int

	// TraceOut, when non-nil, streams the run as a schema-versioned JSONL
	// trace: one header line (topology, initial configuration, TraceDest as
	// the focus destination) followed by every typed obs event. The stream
	// is replayable with trace.ReplayFrames / ssmfp-trace -replay as long
	// as the run injects no faults.
	TraceOut  io.Writer
	TraceDest graph.ProcessID

	// Lifecycle attaches a per-message lifecycle tracker; the run's
	// timelines and Props. 5–7 summaries land in Result.Lifecycle.
	Lifecycle bool

	// OnStatus, when non-nil, receives a progress snapshot every
	// StatusEvery steps (default 1000) and once at the end — the hook the
	// CLIs' -http endpoint polls for live introspection.
	OnStatus    func(Status)
	StatusEvery int
}

// Status is a point-in-time snapshot of a running scenario.
type Status struct {
	Name      string         `json:"name"`
	Steps     int            `json:"steps"`
	Rounds    int            `json:"rounds"`
	Generated int            `json:"generated"`
	Delivered int            `json:"delivered"`
	Moves     map[string]int `json:"moves"`
	Stats     sm.Stats       `json:"stats"`
}

// Monitor is a named per-step invariant: it receives the engine's current
// configuration and returns an error when the invariant is violated.
type Monitor struct {
	Name  string
	Check func(g *graph.Graph, cfg []sm.State) error
}

// WellTypedMonitor checks the §3.2 domain invariants.
func WellTypedMonitor() Monitor {
	return Monitor{Name: "well-typed", Check: checker.WellTyped}
}

// Result summarizes one run.
type Result struct {
	Name     string
	Steps    int
	Rounds   int
	Terminal bool

	Generated        int
	DeliveredValid   int
	InvalidDelivered int
	MaxInvalidPerDst int
	Violations       []string
	Lost             []uint64

	// MovesByRule aggregates move counts by base rule name (R1..R6, A).
	MovesByRule map[string]int

	// RoutingRounds is the observed stabilization time of A in rounds
	// (rounds until every table is canonical); -1 when not measured.
	RoutingRounds int

	// LatencyRounds summarizes generation→delivery latencies of valid
	// messages in rounds.
	LatencyRounds metrics.Summary

	// DeliveryRounds holds the round index of every delivery, in order —
	// the raw series behind the amortized analysis (Proposition 7).
	DeliveryRounds []int

	// GenRoundsBySource holds, per source, the rounds of its R1 executions
	// — the raw series behind delay/waiting time (Proposition 6).
	GenRoundsBySource map[graph.ProcessID][]int

	// MonitorErr is the first invariant violation a Monitor reported, if
	// any (it also aborts the run).
	MonitorErr error

	// Interrupted reports that Scenario.Ctx was cancelled mid-run.
	Interrupted bool

	// Stats holds the engine's enabled-set instrumentation counters.
	Stats sm.Stats

	// Lifecycle is the per-message lifecycle report (Scenario.Lifecycle).
	Lifecycle *obs.Report

	// TraceEvents and TraceErr report on the JSONL sink
	// (Scenario.TraceOut): events written and the sink's sticky error.
	TraceEvents int
	TraceErr    error
}

// OK reports whether the run satisfied Specification SP: terminated, no
// violations, everything generated was delivered, no monitor tripped.
func (r Result) OK() bool {
	return r.Terminal && len(r.Violations) == 0 && len(r.Lost) == 0 &&
		r.Generated == r.DeliveredValid && r.MonitorErr == nil
}

// String renders a one-line summary.
func (r Result) String() string {
	status := "OK"
	if !r.OK() {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %s steps=%d rounds=%d gen=%d dlv=%d inv=%d",
		r.Name, status, r.Steps, r.Rounds, r.Generated, r.DeliveredValid, r.InvalidDelivered)
}

// BaseRule strips the destination suffix from a rule instance name
// ("R3@5" → "R3", "A@2" → "A").
func BaseRule(name string) string {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[:i]
	}
	return name
}

// Run executes the scenario and collects the result.
func Run(s Scenario) Result {
	g := s.Graph
	rng := rand.New(rand.NewSource(s.Seed))
	var cfg []sm.State
	if s.Corrupt == nil {
		cfg = core.CleanConfig(g)
	} else {
		cfg = core.RandomConfig(g, rng, *s.Corrupt)
	}
	var eopts []sm.EngineOption
	if s.SelfCheck {
		eopts = append(eopts, sm.WithSelfCheck(true))
	}
	if s.Shards > 1 {
		eopts = append(eopts, sm.WithShards(s.Shards, s.Seed))
	}
	e := sm.NewEngine(g, core.FullProgramWithPolicy(g, s.Policy), NewDaemon(s.Daemon, s.Seed, g.N()), cfg, eopts...)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	in := workload.NewInjector(s.Workload, func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })

	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000_000
	}
	res := Result{Name: s.Name, RoutingRounds: -1}

	// Observability consumers. Both subscribe to the typed bus before the
	// first step so the stream covers the whole run; with neither requested
	// the bus stays subscriber-free and the engine keeps its zero-cost path.
	var sink *obs.Sink
	if s.TraceOut != nil {
		var err error
		sink, err = obs.NewSink(s.TraceOut, trace.HeaderFor(g, nil, cfg, s.Name, s.TraceDest))
		if err != nil {
			res.TraceErr = err
		} else {
			e.Obs().Subscribe(sink.Observe)
		}
	}
	var life *obs.Tracker
	if s.Lifecycle {
		life = obs.NewTracker()
		e.Obs().Subscribe(life.Observe)
	}
	statusEvery := s.StatusEvery
	if statusEvery < 1 {
		statusEvery = 1000
	}
	status := func() {
		if s.OnStatus == nil {
			return
		}
		st := Status{
			Name: s.Name, Steps: e.Steps(), Rounds: e.Rounds(),
			Generated: tr.GeneratedCount(), Delivered: tr.DeliveredValid(),
			Moves: e.MoveCounts(), Stats: e.Stats(),
		}
		s.OnStatus(st)
	}
	every := s.MonitorEvery
	if every < 1 {
		every = 1
	}
	probe := func() bool {
		if len(s.Monitors) == 0 {
			return true
		}
		cfg := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			cfg[p] = e.PeekStateOf(graph.ProcessID(p))
		}
		for _, m := range s.Monitors {
			if err := m.Check(g, cfg); err != nil {
				res.MonitorErr = fmt.Errorf("monitor %s at step %d: %w", m.Name, e.Steps(), err)
				return false
			}
		}
		return true
	}
	for e.Steps() < maxSteps {
		if s.Ctx != nil && e.Steps()%256 == 0 && s.Ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		in.Tick(e)
		if res.RoutingRounds < 0 && !s.NoRA && routingCorrect(g, e) {
			res.RoutingRounds = e.Rounds()
			if e.Obs().Active() {
				e.Obs().Publish(obs.Event{Kind: obs.KindStabilized, Step: e.Steps(), Round: e.Rounds()})
			}
		}
		if s.OnStatus != nil && e.Steps()%statusEvery == 0 {
			status()
		}
		if e.Steps()%every == 0 && !probe() {
			break
		}
		if !e.Step() {
			if in.Done() {
				res.Terminal = true
				break
			}
			// Quiescent but sends remain scheduled for later: the engine's
			// clock only advances on steps, so skip the idle wait.
			in.SkipWait(e)
		}
	}
	if res.MonitorErr == nil {
		probe()
	}
	res.Steps = e.Steps()
	res.Rounds = e.Rounds()
	if !res.Terminal {
		res.Terminal = e.Terminal()
	}

	res.Generated = tr.GeneratedCount()
	res.DeliveredValid = tr.DeliveredValid()
	res.InvalidDelivered = tr.InvalidDeliveredTotal()
	for _, c := range tr.InvalidDeliveredPerDest() {
		if c > res.MaxInvalidPerDst {
			res.MaxInvalidPerDst = c
		}
	}
	res.Violations = tr.Violations()
	res.Lost = tr.UndeliveredValid()

	res.MovesByRule = make(map[string]int)
	for name, c := range e.MoveCounts() {
		res.MovesByRule[BaseRule(name)] += c
	}
	var lats []float64
	for _, l := range tr.LatencyRounds() {
		lats = append(lats, float64(l))
	}
	res.LatencyRounds = metrics.Summarize(lats)
	for _, d := range tr.Deliveries() {
		res.DeliveryRounds = append(res.DeliveryRounds, d.Round)
	}
	res.GenRoundsBySource = tr.GenerationRoundsBySource()
	res.Stats = e.Stats()
	if life != nil {
		rep := life.Report()
		res.Lifecycle = &rep
	}
	if sink != nil {
		res.TraceEvents = sink.Events()
		res.TraceErr = sink.Flush()
	}
	status()
	return res
}

// routingCorrect probes whether every routing table is canonical.
func routingCorrect(g *graph.Graph, e *sm.Engine) bool {
	for p := 0; p < g.N(); p++ {
		if !routing.Correct(g, graph.ProcessID(p), e.PeekStateOf(graph.ProcessID(p)).(*core.Node).RT) {
			return false
		}
	}
	return true
}
