package sim

import (
	"fmt"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	sm "ssmfp/internal/statemodel"
)

// MCRow is one model-checking scenario's outcome.
type MCRow struct {
	Scenario  string
	States    int
	Terminals int
	OK        bool
}

// MCResult runs the exhaustive model-checking suite (experiment E-MC): the
// key small scenarios explored over every central schedule (and, where
// noted, every simultaneous pair), plus the literal-R5 counterexample,
// whose witness schedule is reported.
type MCResult struct {
	Rows            []MCRow
	AllOK           bool
	LiteralR5Found  bool
	LiteralR5States int
	Witness         []string
	Table           *metrics.Table
}

// ExperimentMC runs the suite.
func ExperimentMC() MCResult {
	res := MCResult{AllOK: true}
	t := metrics.NewTable("E-MC: exhaustive model checking (all central schedules)",
		"scenario", "states", "terminals", "verdict")

	add := func(name string, g *graph.Graph, cfg []sm.State, simultaneity int) {
		opts := explore.CoreOptions(g)
		opts.MaxSimultaneity = simultaneity
		r := explore.Explore(g, core.FullProgram(g), cfg, opts)
		row := MCRow{Scenario: name, States: r.States, Terminals: r.Terminals, OK: r.OK()}
		if !row.OK {
			res.AllOK = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Scenario, row.States, row.Terminals, verdict(row.OK))
	}

	// Clean line, one message.
	{
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Enqueue("m", 2)
		add("clean line, 1 message", g, cfg, 1)
	}
	// Clean line, two equal payloads.
	{
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Enqueue("same", 2)
		cfg[0].(*core.Node).FW.Enqueue("same", 2)
		add("clean line, 2 equal-payload messages", g, cfg, 1)
	}
	// Figure 3 corruption, central and simultaneity 2.
	fig3 := func() (*graph.Graph, []sm.State) {
		g := graph.Figure3Network()
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).RT.Parent[1] = 2
		cfg[0].(*core.Node).RT.Dist[1] = 2
		cfg[2].(*core.Node).RT.Parent[1] = 0
		cfg[2].(*core.Node).RT.Dist[1] = 2
		cfg[1].(*core.Node).FW.Dests[1].BufR = &core.Message{
			Payload: "data", LastHop: 2, Color: 0, UID: 1 << 50, Src: 1, Dest: 1, Valid: false}
		cfg[2].(*core.Node).FW.Enqueue("data", 1)
		return g, cfg
	}
	{
		g, cfg := fig3()
		add("Figure 3 corruption (cycle + invalid)", g, cfg, 1)
	}
	{
		g, cfg := fig3()
		add("Figure 3 corruption, simultaneity 2", g, cfg, 2)
	}

	// The literal R5: the checker must FIND the loss.
	{
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{
			Payload: "x", LastHop: 0, Color: 0, UID: 1 << 51, Src: 0, Dest: 2, Valid: false}
		cfg[0].(*core.Node).FW.Enqueue("x", 2)
		r := explore.Explore(g, core.LiteralR5Program(g), cfg, explore.CoreOptions(g))
		res.LiteralR5Found = r.InvariantErr != nil
		res.LiteralR5States = r.States
		res.Witness = r.Witness
		if !res.LiteralR5Found {
			res.AllOK = false
		}
		t.AddRow("literal R5 (loss expected)", r.States, r.Terminals,
			fmt.Sprintf("loss found, schedule %v", r.Witness))
	}
	res.Table = t
	return res
}

func verdict(ok bool) string {
	if ok {
		return "OK"
	}
	return "FAIL"
}
