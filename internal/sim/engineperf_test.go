package sim

import (
	"testing"
)

// TestEnginePerfIdenticalExecutions requires the incremental engine to be
// an observationally exact replacement for the naive rescan on the full
// composed protocol: same step counts, same per-rule move counts.
func TestEnginePerfIdenticalExecutions(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive in -short mode")
	}
	res := ExperimentEnginePerf(42)
	if !res.AllMatch {
		t.Fatalf("incremental and naive executions diverged:\n%v", res.Table)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 sweep points, got %d", len(res.Rows))
	}
}

// TestEnginePerfGridRatio pins the acceptance bar: on a 20×20 grid the
// incremental engine must do at least 3× fewer guard evaluations per step
// than the naive scan.
func TestEnginePerfGridRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive in -short mode")
	}
	res := ExperimentEnginePerf(7)
	for _, row := range res.Rows {
		if row.Topology != "grid 20x20" {
			continue
		}
		if !row.Match {
			t.Fatalf("20x20 grid executions diverged")
		}
		if row.Ratio < 3 {
			t.Fatalf("20x20 grid guard-eval ratio %.2f < 3x (naive %.0f/step, incremental %.0f/step)",
				row.Ratio, row.NaivePerStep, row.IncPerStep)
		}
		return
	}
	t.Fatal("20x20 grid row missing from sweep")
}
