package daemon

import (
	"testing"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// counterState is a toy state: a single integer.
type counterState struct{ v int }

func (s *counterState) Clone() sm.State { c := *s; return &c }

func config(n int) []sm.State {
	cfg := make([]sm.State, n)
	for i := range cfg {
		cfg[i] = &counterState{}
	}
	return cfg
}

// incProgram: always enabled until v reaches limit.
func incProgram(limit int) sm.Program {
	return sm.NewProgram(sm.Rule{
		Name:   "inc",
		Guard:  func(v *sm.View) bool { return v.Self().(*counterState).v < limit },
		Action: func(v *sm.View) { v.Self().(*counterState).v++ },
	})
}

// twoRuleProgram has two always-enabled same-priority rules, to observe
// which rule a daemon picks.
func twoRuleProgram() sm.Program {
	return sm.NewProgram(
		sm.Rule{Name: "first",
			Guard:  func(v *sm.View) bool { return v.Self().(*counterState).v < 100 },
			Action: func(v *sm.View) { v.Self().(*counterState).v++ }},
		sm.Rule{Name: "second",
			Guard:  func(v *sm.View) bool { return v.Self().(*counterState).v < 100 },
			Action: func(v *sm.View) { v.Self().(*counterState).v += 10 }},
	)
}

func choices(ps ...graph.ProcessID) []sm.Choice {
	out := make([]sm.Choice, len(ps))
	for i, p := range ps {
		out[i] = sm.Choice{Process: p, Rules: []int{0}}
	}
	return out
}

func TestSynchronousSelectsAll(t *testing.T) {
	d := NewSynchronous(1)
	sels := d.Select(0, choices(0, 3, 7))
	if len(sels) != 3 {
		t.Fatalf("selected %d, want 3", len(sels))
	}
	seen := map[graph.ProcessID]bool{}
	for _, s := range sels {
		seen[s.Process] = true
	}
	if !seen[0] || !seen[3] || !seen[7] {
		t.Fatalf("selection missing a processor: %v", sels)
	}
}

func TestCentralRoundRobinCycles(t *testing.T) {
	d := NewCentralRoundRobin()
	en := choices(0, 1, 2)
	var order []graph.ProcessID
	for i := 0; i < 6; i++ {
		sels := d.Select(i, en)
		if len(sels) != 1 {
			t.Fatalf("central daemon selected %d processors", len(sels))
		}
		order = append(order, sels[0].Process)
	}
	want := []graph.ProcessID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCentralRoundRobinSkipsDisabled(t *testing.T) {
	d := NewCentralRoundRobin()
	d.Select(0, choices(0, 1, 2)) // serves 0, next = 1
	sels := d.Select(1, choices(0, 2))
	if sels[0].Process != 2 {
		t.Fatalf("got %d, want 2 (1 is disabled)", sels[0].Process)
	}
	// Wraparound: next is now 3, only 0 enabled.
	sels = d.Select(2, choices(0))
	if sels[0].Process != 0 {
		t.Fatalf("got %d, want 0 (wraparound)", sels[0].Process)
	}
}

func TestCentralRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []graph.ProcessID {
		d := NewCentralRandom(seed)
		var out []graph.ProcessID
		for i := 0; i < 20; i++ {
			out = append(out, d.Select(i, choices(0, 1, 2, 3, 4))[0].Process)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give identical schedules")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical 20-step schedules (suspicious)")
	}
}

func TestDistributedRandomNonEmptyAndValid(t *testing.T) {
	d := NewDistributedRandom(7, 0.3)
	en := choices(0, 1, 2, 3)
	for i := 0; i < 200; i++ {
		sels := d.Select(i, en)
		if len(sels) == 0 {
			t.Fatal("distributed daemon returned empty selection")
		}
		seen := map[graph.ProcessID]bool{}
		for _, s := range sels {
			if seen[s.Process] {
				t.Fatal("processor selected twice")
			}
			seen[s.Process] = true
		}
	}
}

func TestDistributedRandomRejectsBadProbability(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v: expected panic", p)
				}
			}()
			NewDistributedRandom(1, p)
		}()
	}
}

func TestCentralLIFOStarves(t *testing.T) {
	d := NewCentralLIFO()
	for i := 0; i < 50; i++ {
		sels := d.Select(i, choices(0, 1, 5))
		if sels[0].Process != 5 {
			t.Fatal("LIFO daemon should always pick the highest ID")
		}
	}
}

func TestCentralLIFOPicksLastRule(t *testing.T) {
	d := NewCentralLIFO()
	sels := d.Select(0, []sm.Choice{{Process: 2, Rules: []int{0, 1}}})
	if sels[0].Rule != 1 {
		t.Fatalf("rule = %d, want 1 (last offered)", sels[0].Rule)
	}
}

func TestWeaklyFairBoundsStarvation(t *testing.T) {
	const bound = 5
	d := NewWeaklyFair(NewCentralLIFO(), bound)
	en := choices(0, 1, 9)
	lastServed := map[graph.ProcessID]int{}
	for i := 0; i < 100; i++ {
		sels := d.Select(i, en)
		for _, s := range sels {
			lastServed[s.Process] = i
		}
		for _, c := range en {
			if i-lastServed[c.Process] > bound+1 && lastServed[c.Process] != 0 {
				t.Fatalf("processor %d starved beyond bound at step %d", c.Process, i)
			}
		}
	}
	if _, ok := lastServed[0]; !ok {
		t.Fatal("processor 0 never served despite weak fairness")
	}
}

func TestWeaklyFairRejectsBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeaklyFair(NewCentralLIFO(), 0)
}

func TestWeaklyFairForgetsDisabled(t *testing.T) {
	d := NewWeaklyFair(NewCentralLIFO(), 2)
	// Starve 0 almost to the bound, then disable it; its age must reset.
	d.Select(0, choices(0, 9))
	d.Select(1, choices(0, 9))
	d.Select(2, choices(9)) // 0 disabled here: age forgotten
	sels := d.Select(3, choices(0, 9))
	if sels[0].Process != 9 {
		t.Fatalf("got %d; age should have been forgotten while disabled", sels[0].Process)
	}
}

func TestEndToEndFairCompletion(t *testing.T) {
	// Under the weakly fair LIFO daemon every processor still reaches the
	// limit (fairness forces service of low IDs).
	g := graph.Ring(5)
	d := NewWeaklyFair(NewCentralLIFO(), 4)
	e := sm.NewEngine(g, incProgram(3), d, config(5))
	_, terminal := e.Run(10_000, nil)
	if !terminal {
		t.Fatal("weakly fair execution did not terminate")
	}
	for p := graph.ProcessID(0); p < 5; p++ {
		if got := e.StateOf(p).(*counterState).v; got != 3 {
			t.Errorf("processor %d = %d, want 3", p, got)
		}
	}
}

func TestScriptedReplaysExactly(t *testing.T) {
	g := graph.Line(2)
	prog := twoRuleProgram()
	script := []ScriptStep{
		{Act(0, "first")},
		{Act(1, "second")},
		{Act(0, "second"), Act(1, "first")},
	}
	d := NewScripted(prog, script, nil)
	e := sm.NewEngine(g, prog, d, config(2))
	for i := 0; i < 3; i++ {
		e.Step()
	}
	v0 := e.StateOf(0).(*counterState).v
	v1 := e.StateOf(1).(*counterState).v
	if v0 != 11 || v1 != 11 {
		t.Fatalf("values = %d,%d; want 11,11", v0, v1)
	}
	if !d.Exhausted() {
		t.Fatal("script should be exhausted")
	}
}

func TestScriptedPanicsOnDisabledRule(t *testing.T) {
	g := graph.Line(2)
	prog := incProgram(0) // nothing ever enabled... use limit 1 for p0 only
	prog = incProgram(1)
	script := []ScriptStep{{Act(0, "nonexistent")}}
	d := NewScripted(prog, script, nil)
	e := sm.NewEngine(g, prog, d, config(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown rule")
		}
	}()
	e.Step()
}

func TestScriptedPanicsOnDisabledProcessor(t *testing.T) {
	g := graph.Line(2)
	prog := sm.NewProgram(sm.Rule{
		Name:   "only-p0",
		Guard:  func(v *sm.View) bool { return v.ID() == 0 },
		Action: func(v *sm.View) {},
	})
	script := []ScriptStep{{Act(1, "only-p0")}}
	d := NewScripted(prog, script, nil)
	e := sm.NewEngine(g, prog, d, config(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for disabled processor")
		}
	}()
	e.Step()
}

func TestScriptedFallback(t *testing.T) {
	g := graph.Line(2)
	prog := incProgram(5)
	d := NewScripted(prog, []ScriptStep{{Act(0, "inc")}}, NewCentralRoundRobin())
	e := sm.NewEngine(g, prog, d, config(2))
	_, terminal := e.Run(100, nil)
	if !terminal {
		t.Fatal("fallback daemon should finish the run")
	}
}

func TestScriptedExhaustedNoFallbackPanics(t *testing.T) {
	g := graph.Line(2)
	prog := incProgram(5)
	d := NewScripted(prog, []ScriptStep{{Act(0, "inc")}}, nil)
	e := sm.NewEngine(g, prog, d, config(2))
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic after script exhaustion")
		}
	}()
	e.Step()
}
