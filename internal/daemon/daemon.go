// Package daemon provides the schedulers ("daemons") of the state model:
// the adversary that picks which enabled processors execute at each step.
// §2.1 of the paper distinguishes daemons by distribution (central vs
// distributed) and fairness (strongly fair, weakly fair, unfair). The
// paper's proofs assume a weakly fair (distributed) daemon; the experiments
// also exercise synchronous, central, random-distributed, starvation-prone
// and scripted daemons.
//
// All daemons here are deterministic given their seed, so every experiment
// is reproducible.
package daemon

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// pickFirst deterministically picks the first offered rule (program order,
// which for SSMFP is the paper's R1..R6 listing order).
func pickFirst(c sm.Choice) sm.Selection {
	return sm.Selection{Process: c.Process, Rule: c.Rules[0]}
}

func pickRandom(c sm.Choice, rng *rand.Rand) sm.Selection {
	return sm.Selection{Process: c.Process, Rule: c.Rules[rng.Intn(len(c.Rules))]}
}

// Synchronous activates every enabled processor at every step.
type Synchronous struct {
	rng *rand.Rand
}

// NewSynchronous returns a synchronous daemon; rule choice within a
// processor is uniform over the offered (minimal-priority) rules.
func NewSynchronous(seed int64) *Synchronous {
	return &Synchronous{rng: rand.New(rand.NewSource(seed))}
}

func (d *Synchronous) Name() string { return "synchronous" }

func (d *Synchronous) Select(step int, enabled []sm.Choice) []sm.Selection {
	out := make([]sm.Selection, len(enabled))
	for i, c := range enabled {
		out[i] = pickRandom(c, d.rng)
	}
	return out
}

// CentralRoundRobin activates exactly one processor per step, cycling
// through processor IDs; it is weakly fair (every continuously enabled
// processor is chosen within n steps of the cycle reaching it).
type CentralRoundRobin struct {
	next graph.ProcessID
}

// NewCentralRoundRobin returns a central round-robin daemon.
func NewCentralRoundRobin() *CentralRoundRobin { return &CentralRoundRobin{} }

func (d *CentralRoundRobin) Name() string { return "central-round-robin" }

func (d *CentralRoundRobin) Select(step int, enabled []sm.Choice) []sm.Selection {
	// Pick the first enabled processor with ID >= next (cyclically).
	best := enabled[0]
	found := false
	for _, c := range enabled {
		if c.Process >= d.next {
			best = c
			found = true
			break
		}
	}
	if !found {
		best = enabled[0] // wrap around
	}
	d.next = best.Process + 1
	return []sm.Selection{pickFirst(best)}
}

// CentralRandom activates one uniformly random enabled processor per step.
// It is strongly fair with probability 1 but gives no deterministic bound.
type CentralRandom struct {
	rng *rand.Rand
}

// NewCentralRandom returns a central uniform-random daemon.
func NewCentralRandom(seed int64) *CentralRandom {
	return &CentralRandom{rng: rand.New(rand.NewSource(seed))}
}

func (d *CentralRandom) Name() string { return "central-random" }

func (d *CentralRandom) Select(step int, enabled []sm.Choice) []sm.Selection {
	return []sm.Selection{pickRandom(enabled[d.rng.Intn(len(enabled))], d.rng)}
}

// DistributedRandom activates each enabled processor independently with
// probability p, re-drawing until the set is non-empty (the distributed
// daemon must choose at least one processor).
type DistributedRandom struct {
	rng *rand.Rand
	p   float64
}

// NewDistributedRandom returns a distributed daemon activating each enabled
// processor with probability p ∈ (0, 1].
func NewDistributedRandom(seed int64, p float64) *DistributedRandom {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("daemon: DistributedRandom probability %v out of (0,1]", p))
	}
	return &DistributedRandom{rng: rand.New(rand.NewSource(seed)), p: p}
}

func (d *DistributedRandom) Name() string { return "distributed-random" }

func (d *DistributedRandom) Select(step int, enabled []sm.Choice) []sm.Selection {
	for {
		var out []sm.Selection
		for _, c := range enabled {
			if d.rng.Float64() < d.p {
				out = append(out, pickRandom(c, d.rng))
			}
		}
		if len(out) > 0 {
			return out
		}
	}
}

// CentralLIFO is a starvation-prone central daemon: it always activates the
// enabled processor with the highest ID (and within it, the last offered
// rule). Alone it is unfair — wrap it in WeaklyFair to obtain an
// adversarial-but-weakly-fair daemon, the worst case the paper's proofs
// admit.
type CentralLIFO struct{}

// NewCentralLIFO returns the biased central daemon described above.
func NewCentralLIFO() *CentralLIFO { return &CentralLIFO{} }

func (d *CentralLIFO) Name() string { return "central-lifo" }

func (d *CentralLIFO) Select(step int, enabled []sm.Choice) []sm.Selection {
	best := enabled[0]
	for _, c := range enabled {
		if c.Process > best.Process {
			best = c
		}
	}
	return []sm.Selection{{Process: best.Process, Rule: best.Rules[len(best.Rules)-1]}}
}

// WeaklyFair wraps an inner daemon and enforces weak fairness with a
// deterministic starvation bound: it tracks, for every processor, how many
// consecutive steps it has been enabled without being activated; whenever
// some processor's count reaches Bound, the wrapper overrides the inner
// daemon and activates (one of) the most starved processor(s) instead.
// Every continuously enabled processor is therefore activated within Bound
// steps — the weakly fair daemon of §2.1.
type WeaklyFair struct {
	inner sm.Daemon
	bound int
	age   map[graph.ProcessID]int
}

// NewWeaklyFair wraps inner with starvation bound ≥ 1.
func NewWeaklyFair(inner sm.Daemon, bound int) *WeaklyFair {
	if bound < 1 {
		panic(fmt.Sprintf("daemon: WeaklyFair bound %d < 1", bound))
	}
	return &WeaklyFair{inner: inner, bound: bound, age: make(map[graph.ProcessID]int)}
}

func (d *WeaklyFair) Name() string { return "weakly-fair(" + d.inner.Name() + ")" }

func (d *WeaklyFair) Select(step int, enabled []sm.Choice) []sm.Selection {
	// Find the most starved enabled processor.
	starved := sm.Choice{}
	starvedAge := -1
	for _, c := range enabled {
		if a := d.age[c.Process]; a > starvedAge {
			starved, starvedAge = c, a
		}
	}
	var out []sm.Selection
	if starvedAge >= d.bound {
		out = []sm.Selection{pickFirst(starved)}
	} else {
		out = d.inner.Select(step, enabled)
	}
	chosen := make(map[graph.ProcessID]bool, len(out))
	for _, s := range out {
		chosen[s.Process] = true
	}
	// Age accounting: reset on activation, increment while enabled and
	// passed over, forget when disabled.
	enabledSet := make(map[graph.ProcessID]bool, len(enabled))
	for _, c := range enabled {
		enabledSet[c.Process] = true
		if chosen[c.Process] {
			d.age[c.Process] = 0
		} else {
			d.age[c.Process]++
		}
	}
	for p := range d.age {
		if !enabledSet[p] {
			delete(d.age, p)
		}
	}
	return out
}
