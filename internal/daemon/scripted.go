package daemon

import (
	"fmt"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// ScriptStep names the activations of one step of a scripted execution:
// which processors fire which rules (by rule name).
type ScriptStep []struct {
	Process graph.ProcessID
	Rule    string
}

// Step is a convenience constructor for a ScriptStep.
func Step(acts ...struct {
	Process graph.ProcessID
	Rule    string
}) ScriptStep {
	return ScriptStep(acts)
}

// Act builds one activation of a ScriptStep.
func Act(p graph.ProcessID, rule string) struct {
	Process graph.ProcessID
	Rule    string
} {
	return struct {
		Process graph.ProcessID
		Rule    string
	}{p, rule}
}

// Scripted replays a fixed schedule: at step i it activates exactly the
// processors/rules of script[i]. It panics with a precise diagnostic if a
// scripted activation is not enabled — scripted runs are golden replays
// (Figure 3) where any divergence is a bug. After the script is exhausted
// it delegates to the fallback daemon (nil fallback: panic on extra steps).
type Scripted struct {
	rules    []sm.Rule
	script   []ScriptStep
	fallback sm.Daemon
	cursor   int
}

// NewScripted builds a scripted daemon for a program (the engine's rule
// indexing follows program.Rules() order).
func NewScripted(program sm.Program, script []ScriptStep, fallback sm.Daemon) *Scripted {
	return &Scripted{rules: program.Rules(), script: script, fallback: fallback}
}

// Exhausted reports whether the whole script has been replayed.
func (d *Scripted) Exhausted() bool { return d.cursor >= len(d.script) }

func (d *Scripted) Name() string { return "scripted" }

func (d *Scripted) Select(step int, enabled []sm.Choice) []sm.Selection {
	if d.cursor >= len(d.script) {
		if d.fallback == nil {
			panic(fmt.Sprintf("daemon: script exhausted after %d steps but execution continues", len(d.script)))
		}
		return d.fallback.Select(step, enabled)
	}
	want := d.script[d.cursor]
	d.cursor++
	byProc := make(map[graph.ProcessID]sm.Choice, len(enabled))
	for _, c := range enabled {
		byProc[c.Process] = c
	}
	out := make([]sm.Selection, 0, len(want))
	for _, act := range want {
		c, ok := byProc[act.Process]
		if !ok {
			panic(fmt.Sprintf("daemon: script step %d: processor %d has no enabled rule (wanted %s); enabled set: %v",
				d.cursor-1, act.Process, act.Rule, describe(enabled, d.rules)))
		}
		found := -1
		for _, ri := range c.Rules {
			if d.rules[ri].Name == act.Rule {
				found = ri
				break
			}
		}
		if found < 0 {
			panic(fmt.Sprintf("daemon: script step %d: rule %s not enabled at processor %d; enabled there: %s",
				d.cursor-1, act.Rule, act.Process, describeChoice(c, d.rules)))
		}
		out = append(out, sm.Selection{Process: act.Process, Rule: found})
	}
	return out
}

func describe(enabled []sm.Choice, rules []sm.Rule) string {
	s := ""
	for i, c := range enabled {
		if i > 0 {
			s += "; "
		}
		s += describeChoice(c, rules)
	}
	return s
}

func describeChoice(c sm.Choice, rules []sm.Rule) string {
	s := fmt.Sprintf("p%d:[", c.Process)
	for i, ri := range c.Rules {
		if i > 0 {
			s += ","
		}
		s += rules[ri].Name
	}
	return s + "]"
}
