// Package checker provides the specification oracles of the reproduction:
// it observes an execution through engine events and verifies Specification
// SP of the paper — every valid (generated) message is delivered to its
// destination once and only once — plus the supporting invariants the
// proofs rely on (no valid message is ever lost from all buffers before
// delivery, invalid deliveries per destination stay within the 2n bound of
// Proposition 4, messages are only delivered at their destination).
//
// The oracles watch simulation-side UIDs, which no protocol guard or action
// reads, so they detect losses and duplications even when distinct messages
// collide on the protocol-visible triple (m, q, c).
package checker

import (
	"fmt"
	"sort"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// Delivery records one R6 consumption.
type Delivery struct {
	Msg   *core.Message
	At    graph.ProcessID
	Step  int
	Round int
}

// Tracker accumulates generation and delivery events of one execution and
// answers specification questions about it. Create with New, register with
// Attach before running the engine, and optionally RecordInitial the
// initial configuration so invalid messages are known individually.
type Tracker struct {
	g       *graph.Graph
	e       *sm.Engine
	initial map[uint64]*core.Message // invalid messages present at start

	generated  map[uint64]*core.Message
	genStep    map[uint64]int
	genRound   map[uint64]int
	deliveries []Delivery
	delivered  map[uint64]int // UID -> delivery count

	violations  []violation
	compromised map[uint64]bool // UIDs invalidated by an injected fault
}

// violation is a recorded specification breach; uid == 0 means not
// attributable to one message.
type violation struct {
	uid uint64
	msg string
}

// New returns a Tracker for executions on g.
func New(g *graph.Graph) *Tracker {
	return &Tracker{
		g:           g,
		initial:     make(map[uint64]*core.Message),
		generated:   make(map[uint64]*core.Message),
		genStep:     make(map[uint64]int),
		genRound:    make(map[uint64]int),
		delivered:   make(map[uint64]int),
		compromised: make(map[uint64]bool),
	}
}

// RecordInitial remembers the invalid messages occupying buffers in the
// initial configuration (for Proposition 4 accounting).
func (t *Tracker) RecordInitial(cfg []sm.State) {
	for uid, m := range core.InvalidMessages(cfg) {
		t.initial[uid] = m
	}
}

// Attach subscribes the tracker to the engine's event stream.
func (t *Tracker) Attach(e *sm.Engine) {
	t.e = e
	e.Subscribe(t.onEvent)
}

func (t *Tracker) onEvent(ev sm.Event) {
	switch ev.Kind {
	case core.KindGenerate:
		msg := ev.Payload.(core.GenerateEvent).Msg
		if _, dup := t.generated[msg.UID]; dup {
			t.violations = append(t.violations, violation{msg.UID, fmt.Sprintf("UID %d generated twice", msg.UID)})
		}
		t.generated[msg.UID] = msg
		t.genStep[msg.UID] = ev.Step
		t.genRound[msg.UID] = t.e.Rounds()
	case core.KindDeliver:
		msg := ev.Payload.(core.DeliverEvent).Msg
		t.deliveries = append(t.deliveries, Delivery{Msg: msg, At: ev.Process, Step: ev.Step, Round: t.e.Rounds()})
		t.delivered[msg.UID]++
		if ev.Process != msg.Dest {
			t.violations = append(t.violations,
				violation{msg.UID, fmt.Sprintf("UID %d delivered at %d, destination is %d", msg.UID, ev.Process, msg.Dest)})
		}
		if msg.Valid && t.delivered[msg.UID] > 1 {
			t.violations = append(t.violations,
				violation{msg.UID, fmt.Sprintf("valid UID %d delivered %d times (duplication)", msg.UID, t.delivered[msg.UID])})
		}
	}
}

// GeneratedCount returns how many messages R1 accepted.
func (t *Tracker) GeneratedCount() int { return len(t.generated) }

// Deliveries returns all recorded deliveries in order.
func (t *Tracker) Deliveries() []Delivery { return t.deliveries }

// DeliveredValid returns how many distinct valid messages were delivered.
func (t *Tracker) DeliveredValid() int {
	n := 0
	for uid := range t.generated {
		if t.delivered[uid] > 0 {
			n++
		}
	}
	return n
}

// InvalidDeliveredPerDest returns, per destination, how many invalid
// deliveries occurred (counting repeats: the Proposition 4 bound is on
// deliveries, not distinct messages).
func (t *Tracker) InvalidDeliveredPerDest() map[graph.ProcessID]int {
	out := make(map[graph.ProcessID]int)
	for _, d := range t.deliveries {
		if !d.Msg.Valid {
			out[d.At]++
		}
	}
	return out
}

// InvalidDeliveredTotal returns the total number of invalid deliveries.
func (t *Tracker) InvalidDeliveredTotal() int {
	n := 0
	for _, d := range t.deliveries {
		if !d.Msg.Valid {
			n++
		}
	}
	return n
}

// MarkCompromised excludes messages from the specification accounting:
// an injected transient fault destroyed or corrupted them in place, so
// the exactly-once obligation no longer applies (snap-stabilization
// guarantees messages generated *after* the last fault; see
// internal/faults). Idempotent.
func (t *Tracker) MarkCompromised(uids ...uint64) {
	for _, uid := range uids {
		t.compromised[uid] = true
	}
}

// Compromised reports how many tracked messages a fault invalidated.
func (t *Tracker) Compromised() int { return len(t.compromised) }

// AllValidDelivered reports whether every generated, non-compromised
// message has been delivered (at least once; duplications are reported
// separately).
func (t *Tracker) AllValidDelivered() bool {
	for uid := range t.generated {
		if t.delivered[uid] == 0 && !t.compromised[uid] {
			return false
		}
	}
	return true
}

// UndeliveredValid lists the UIDs of generated messages not yet delivered,
// sorted for stable output.
func (t *Tracker) UndeliveredValid() []uint64 {
	var out []uint64
	for uid := range t.generated {
		if t.delivered[uid] == 0 && !t.compromised[uid] {
			out = append(out, uid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckNoLoss verifies the real-time no-loss invariant against the current
// configuration: every generated, not-yet-delivered valid message must
// occupy at least one buffer. It returns an error naming the first lost
// message, or nil.
func (t *Tracker) CheckNoLoss(cfg []sm.State) error {
	present := make(map[uint64]bool)
	for _, s := range cfg {
		n := s.(*core.Node).FW
		for _, ds := range n.Dests {
			for _, m := range []*core.Message{ds.BufR, ds.BufE} {
				if m != nil {
					present[m.UID] = true
				}
			}
		}
	}
	for uid, msg := range t.generated {
		if t.delivered[uid] == 0 && !present[uid] && !t.compromised[uid] {
			return fmt.Errorf("checker: valid message %d (%s, %d→%d) lost: undelivered and absent from all buffers",
				uid, msg.Payload, msg.Src, msg.Dest)
		}
	}
	return nil
}

// Violations returns every specification violation observed so far:
// duplicate deliveries of valid messages, deliveries at wrong destinations,
// duplicate generations, plus (computed on demand) Proposition 4 breaches —
// more than 2n invalid deliveries to one destination.
func (t *Tracker) Violations() []string {
	var out []string
	for _, v := range t.violations {
		if v.uid != 0 && t.compromised[v.uid] {
			continue
		}
		out = append(out, v.msg)
	}
	bound := 2 * t.g.N()
	for d, c := range t.InvalidDeliveredPerDest() {
		if c > bound {
			out = append(out, fmt.Sprintf("destination %d received %d invalid deliveries, bound is 2n=%d", d, c, bound))
		}
	}
	return out
}

// LatencySteps returns, for every delivered valid message, the number of
// steps between generation and (first) delivery.
func (t *Tracker) LatencySteps() map[uint64]int {
	out := make(map[uint64]int)
	seen := make(map[uint64]bool)
	for _, d := range t.deliveries {
		if d.Msg.Valid && !seen[d.Msg.UID] {
			seen[d.Msg.UID] = true
			out[d.Msg.UID] = d.Step - t.genStep[d.Msg.UID]
		}
	}
	return out
}

// LatencyRounds returns generation-to-delivery latencies in rounds.
func (t *Tracker) LatencyRounds() map[uint64]int {
	out := make(map[uint64]int)
	seen := make(map[uint64]bool)
	for _, d := range t.deliveries {
		if d.Msg.Valid && !seen[d.Msg.UID] {
			seen[d.Msg.UID] = true
			out[d.Msg.UID] = d.Round - t.genRound[d.Msg.UID]
		}
	}
	return out
}

// GenerationRoundsBySource returns, per source processor, the rounds at
// which its generations (R1 executions) occurred, in execution order — the
// raw data behind the per-processor delay and waiting-time measurements of
// Proposition 6.
func (t *Tracker) GenerationRoundsBySource() map[graph.ProcessID][]int {
	type gen struct{ step, round int }
	bySrc := make(map[graph.ProcessID][]gen)
	for uid, m := range t.generated {
		bySrc[m.Src] = append(bySrc[m.Src], gen{t.genStep[uid], t.genRound[uid]})
	}
	out := make(map[graph.ProcessID][]int, len(bySrc))
	for src, gens := range bySrc {
		sort.Slice(gens, func(i, j int) bool { return gens[i].step < gens[j].step })
		rounds := make([]int, len(gens))
		for i, g := range gens {
			rounds[i] = g.round
		}
		out[src] = rounds
	}
	return out
}

// GenerationRounds returns the rounds at which each generation occurred, in
// generation order — the raw data behind the delay/waiting-time
// measurements of Proposition 6.
func (t *Tracker) GenerationRounds() []int {
	type gen struct{ step, round int }
	var gens []gen
	for uid := range t.generated {
		gens = append(gens, gen{t.genStep[uid], t.genRound[uid]})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].step < gens[j].step })
	out := make([]int, len(gens))
	for i, g := range gens {
		out[i] = g.round
	}
	return out
}
