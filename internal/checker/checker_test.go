package checker

import (
	"math/rand"
	"strings"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// fakeEngine satisfies the tracker's needs in unit tests: we only need an
// event source and a round counter, so we use a real engine with a trivial
// program and feed events through its Subscribe machinery indirectly by
// calling the tracker's handler via a real run where possible. For pure
// unit tests we call onEvent through a minimal engine.
func newEngineForEvents(g *graph.Graph) *sm.Engine {
	prog := sm.NewProgram(sm.Rule{
		Name:   "noop",
		Guard:  func(v *sm.View) bool { return false },
		Action: func(v *sm.View) {},
	})
	return sm.NewEngine(g, prog, daemon.NewSynchronous(1), core.CleanConfig(g))
}

func gen(t *Tracker, uid uint64, src, dest graph.ProcessID, step int) *core.Message {
	m := &core.Message{Payload: "p", UID: uid, Src: src, Dest: dest, Valid: true, GenStep: step}
	t.onEvent(sm.Event{Step: step, Process: src, Kind: core.KindGenerate,
		Payload: core.GenerateEvent{Msg: m}})
	return m
}

func deliver(t *Tracker, m *core.Message, at graph.ProcessID, step int) {
	t.onEvent(sm.Event{Step: step, Process: at, Kind: core.KindDeliver,
		Payload: core.DeliverEvent{Msg: m}})
}

func newTestTracker() (*Tracker, *graph.Graph) {
	g := graph.Line(4)
	tr := New(g)
	tr.Attach(newEngineForEvents(g))
	return tr, g
}

func TestExactlyOnceAccepted(t *testing.T) {
	tr, _ := newTestTracker()
	m := gen(tr, 1, 0, 3, 0)
	deliver(tr, m, 3, 10)
	if v := tr.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if !tr.AllValidDelivered() || tr.DeliveredValid() != 1 || tr.GeneratedCount() != 1 {
		t.Fatal("accounting wrong")
	}
}

func TestDuplicateDeliveryDetected(t *testing.T) {
	tr, _ := newTestTracker()
	m := gen(tr, 1, 0, 3, 0)
	deliver(tr, m, 3, 10)
	deliver(tr, m, 3, 20)
	v := tr.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "duplication") {
		t.Fatalf("violations = %v, want one duplication", v)
	}
}

func TestWrongDestinationDetected(t *testing.T) {
	tr, _ := newTestTracker()
	m := gen(tr, 1, 0, 3, 0)
	deliver(tr, m, 2, 10) // wrong processor
	v := tr.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "destination") {
		t.Fatalf("violations = %v", v)
	}
}

func TestDoubleGenerationDetected(t *testing.T) {
	tr, _ := newTestTracker()
	gen(tr, 1, 0, 3, 0)
	gen(tr, 1, 0, 3, 5)
	v := tr.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "generated twice") {
		t.Fatalf("violations = %v", v)
	}
}

func TestUndeliveredListed(t *testing.T) {
	tr, _ := newTestTracker()
	gen(tr, 7, 0, 3, 0)
	gen(tr, 3, 1, 2, 1)
	if tr.AllValidDelivered() {
		t.Fatal("nothing delivered yet")
	}
	u := tr.UndeliveredValid()
	if len(u) != 2 || u[0] != 3 || u[1] != 7 {
		t.Fatalf("undelivered = %v, want sorted [3 7]", u)
	}
}

func TestInvalidDeliveryAccounting(t *testing.T) {
	tr, g := newTestTracker()
	inv := &core.Message{Payload: "junk", UID: 100, Dest: 2, Valid: false}
	for i := 0; i < 3; i++ {
		deliver(tr, inv, 2, i)
	}
	if tr.InvalidDeliveredTotal() != 3 {
		t.Fatalf("invalid total = %d", tr.InvalidDeliveredTotal())
	}
	if tr.InvalidDeliveredPerDest()[2] != 3 {
		t.Fatal("per-dest accounting wrong")
	}
	// Invalid duplicates are allowed (no violation) while within the 2n bound.
	if v := tr.Violations(); len(v) != 0 {
		t.Fatalf("violations = %v, invalid repeats are allowed", v)
	}
	// Blow the Proposition 4 bound.
	for i := 0; i < 2*g.N(); i++ {
		deliver(tr, inv, 2, 10+i)
	}
	v := tr.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "bound is 2n") {
		t.Fatalf("violations = %v, want Prop 4 breach", v)
	}
}

func TestCheckNoLoss(t *testing.T) {
	tr, g := newTestTracker()
	cfg := core.CleanConfig(g)
	m := gen(tr, 9, 0, 3, 0)
	if err := tr.CheckNoLoss(cfg); err == nil {
		t.Fatal("message is in no buffer and undelivered: must report loss")
	}
	cfg[1].(*core.Node).FW.Dests[3].BufR = m
	if err := tr.CheckNoLoss(cfg); err != nil {
		t.Fatalf("message present: %v", err)
	}
	cfg[1].(*core.Node).FW.Dests[3].BufR = nil
	deliver(tr, m, 3, 4)
	if err := tr.CheckNoLoss(cfg); err != nil {
		t.Fatalf("message delivered: %v", err)
	}
}

func TestLatencyMaps(t *testing.T) {
	tr, _ := newTestTracker()
	m := gen(tr, 1, 0, 3, 10)
	deliver(tr, m, 3, 25)
	deliver(tr, m, 3, 30) // duplicate: latency counts the first delivery
	lat := tr.LatencySteps()
	if lat[1] != 15 {
		t.Fatalf("latency = %d, want 15", lat[1])
	}
	if rounds := tr.LatencyRounds(); rounds[1] != 0 {
		t.Fatalf("round latency = %d, want 0 (no rounds elapsed)", rounds[1])
	}
}

func TestGenerationRoundsOrdered(t *testing.T) {
	tr, _ := newTestTracker()
	gen(tr, 5, 0, 3, 30)
	gen(tr, 6, 0, 2, 10)
	rounds := tr.GenerationRounds()
	if len(rounds) != 2 {
		t.Fatalf("len = %d", len(rounds))
	}
}

func TestRecordInitial(t *testing.T) {
	g := graph.Line(3)
	tr := New(g)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Dests[1].BufE = &core.Message{Payload: "junk", UID: 500, Valid: false}
	tr.RecordInitial(cfg)
	if len(tr.initial) != 1 {
		t.Fatalf("initial invalid count = %d", len(tr.initial))
	}
}

func TestEndToEndWithRealEngine(t *testing.T) {
	g := graph.Line(4)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("x", 3)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	tr := New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	if _, terminal := e.Run(10_000, nil); !terminal {
		t.Fatal("did not terminate")
	}
	if !tr.AllValidDelivered() || len(tr.Violations()) != 0 {
		t.Fatalf("SP violated: %v", tr.Violations())
	}
	if len(tr.Deliveries()) != 1 || tr.Deliveries()[0].At != 3 {
		t.Fatalf("deliveries = %+v", tr.Deliveries())
	}
}

func TestMarkCompromisedExemptsAccounting(t *testing.T) {
	tr, _ := newTestTracker()
	m := gen(tr, 11, 0, 3, 0)
	deliver(tr, m, 3, 5)
	deliver(tr, m, 3, 9)   // duplication...
	tr.MarkCompromised(11) // ...but a fault touched the message
	if v := tr.Violations(); len(v) != 0 {
		t.Fatalf("compromised violations must be filtered: %v", v)
	}
	if tr.Compromised() != 1 {
		t.Fatalf("Compromised() = %d", tr.Compromised())
	}
	// A compromised undelivered message is not "lost".
	gen(tr, 12, 1, 2, 10)
	tr.MarkCompromised(12)
	if !tr.AllValidDelivered() {
		t.Fatal("compromised messages are exempt from delivery accounting")
	}
	if len(tr.UndeliveredValid()) != 0 {
		t.Fatal("compromised messages must not be listed undelivered")
	}
	if err := tr.CheckNoLoss(nil); err != nil {
		t.Fatalf("CheckNoLoss must skip compromised: %v", err)
	}
}

func TestGenerationRoundsBySource(t *testing.T) {
	tr, _ := newTestTracker()
	gen(tr, 21, 0, 3, 5)
	gen(tr, 22, 0, 2, 1)
	gen(tr, 23, 1, 3, 3)
	by := tr.GenerationRoundsBySource()
	if len(by[0]) != 2 || len(by[1]) != 1 {
		t.Fatalf("per-source counts wrong: %v", by)
	}
}

func TestWellTypedAcceptsCleanAndRandom(t *testing.T) {
	g := graph.Figure1Network()
	if err := WellTyped(g, core.CleanConfig(g)); err != nil {
		t.Fatalf("clean config must be well-typed: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		if err := WellTyped(g, core.RandomConfig(g, rng, core.DefaultCorrupt)); err != nil {
			t.Fatalf("RandomConfig must stay in the domains: %v", err)
		}
	}
}

func TestWellTypedDetectsViolations(t *testing.T) {
	g := graph.Line(4)
	cases := []struct {
		name   string
		break_ func(cfg []sm.State)
	}{
		{"bad dist", func(cfg []sm.State) { cfg[0].(*core.Node).RT.Dist[2] = 99 }},
		{"bad parent", func(cfg []sm.State) { cfg[0].(*core.Node).RT.Parent[2] = 3 }},
		{"bad last hop", func(cfg []sm.State) {
			cfg[0].(*core.Node).FW.Dests[2].BufR = &core.Message{Payload: "m", LastHop: 3, Color: 0}
		}},
		{"bad color", func(cfg []sm.State) {
			cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{Payload: "m", LastHop: 0, Color: 9}
		}},
		{"bad queue entry", func(cfg []sm.State) {
			cfg[0].(*core.Node).FW.Dests[2].Queue = []graph.ProcessID{3}
		}},
		{"overlong queue", func(cfg []sm.State) {
			cfg[1].(*core.Node).FW.Dests[2].Queue = []graph.ProcessID{0, 1, 2, 0}
		}},
	}
	for _, c := range cases {
		cfg := core.CleanConfig(g)
		c.break_(cfg)
		if err := WellTyped(g, cfg); err == nil {
			t.Errorf("%s: violation not detected", c.name)
		}
	}
}
