package checker

import (
	"fmt"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// WellTyped verifies the domain invariants of §3.2 on a configuration:
// every buffered message has LastHop ∈ N_p ∪ {p} and Color ∈ {0..Δ},
// every fairness-queue entry is in N_p ∪ {p} with length ≤ Δ+1, and every
// routing entry has Dist ∈ [0, n] and Parent ∈ N_p ∪ {p}. The rules of
// SSMFP and A preserve these domains, so the invariant must hold at every
// step of every execution that starts well-typed — the property tests
// drive this oracle alongside the no-loss check.
func WellTyped(g *graph.Graph, cfg []sm.State) error {
	n := g.N()
	delta := g.MaxDegree()
	for pp, s := range cfg {
		p := graph.ProcessID(pp)
		node, ok := s.(*core.Node)
		if !ok {
			return fmt.Errorf("checker: state of %d is %T, not *core.Node", p, s)
		}
		for d := 0; d < n; d++ {
			if dist := node.RT.Dist[d]; dist < 0 || dist > n {
				return fmt.Errorf("checker: Dist_%d(%d) = %d out of [0,%d]", p, d, dist, n)
			}
			if parent := node.RT.Parent[d]; !g.IsNeighborOrSelf(p, parent) {
				return fmt.Errorf("checker: Parent_%d(%d) = %d not in N_%d ∪ {%d}", p, d, parent, p, p)
			}
			ds := node.FW.Dests[d]
			for which, m := range map[string]*core.Message{"bufR": ds.BufR, "bufE": ds.BufE} {
				if m == nil {
					continue
				}
				if !g.IsNeighborOrSelf(p, m.LastHop) {
					return fmt.Errorf("checker: %s_%d(%d) last hop %d not in N_%d ∪ {%d}",
						which, p, d, m.LastHop, p, p)
				}
				if m.Color < 0 || m.Color > delta {
					return fmt.Errorf("checker: %s_%d(%d) color %d out of {0..%d}", which, p, d, m.Color, delta)
				}
			}
			if len(ds.Queue) > delta+1 {
				return fmt.Errorf("checker: queue_%d(%d) has %d entries, bound is Δ+1 = %d",
					p, d, len(ds.Queue), delta+1)
			}
			for _, q := range ds.Queue {
				if !g.IsNeighborOrSelf(p, q) {
					return fmt.Errorf("checker: queue_%d(%d) entry %d not in N_%d ∪ {%d}", p, d, q, p, p)
				}
			}
		}
	}
	return nil
}
