// Package routing implements the self-stabilizing silent routing algorithm
// A that SSMFP assumes (§3.1 of the paper): an algorithm that computes
// routing tables, stabilizes from any initial table state, is silent (no
// action enabled after convergence), induces minimal paths, and runs
// simultaneously with SSMFP *with priority* (a processor with enabled
// actions of both always executes A's).
//
// The concrete algorithm is the classic self-stabilizing BFS distance
// vector (in the spirit of the paper's references [16, 9]): every processor
// p maintains, per destination d, a distance Dist_p(d) ∈ {0..n} and a
// parent Parent_p(d) ∈ N_p. The destination pins Dist to 0; every other
// processor corrects (Dist, Parent) to (min over neighbors of Dist_q(d)+1
// capped at n, the smallest-ID neighbor achieving the minimum). The
// canonical argmin makes the algorithm silent exactly when every table
// entry is canonical, and nextHop_p(d) = Parent_p(d) then lies on a
// minimal path.
package routing

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	sm "ssmfp/internal/statemodel"
)

// Priority is the rule priority of the routing algorithm; SSMFP must use a
// strictly larger value so that A takes precedence.
const Priority = 0

// NodeState holds one processor's routing table: Dist and Parent indexed by
// destination. At the destination itself Parent is the processor's own ID.
type NodeState struct {
	Dist   []int             // Dist[d] ∈ [0, n]
	Parent []graph.ProcessID // Parent[d] ∈ N_p ∪ {p}
}

// Clone deep-copies the routing table.
func (s *NodeState) Clone() *NodeState {
	return &NodeState{
		Dist:   append([]int(nil), s.Dist...),
		Parent: append([]graph.ProcessID(nil), s.Parent...),
	}
}

// NextHop returns nextHop_p(d) as read from the table. It is only
// meaningful at p ≠ d; the protocol never consults it at the destination.
func (s *NodeState) NextHop(d graph.ProcessID) graph.ProcessID { return s.Parent[d] }

// Accessor extracts the routing component from a composed scenario state.
// Scenario states embed a routing NodeState next to the forwarding state;
// the rules built by NewProgram reach it through this function.
type Accessor func(sm.State) *NodeState

// NewProgram returns the guarded-action program of A over graph g: one rule
// per destination ("A@d"), each at Priority, correcting (Dist, Parent) for
// that destination. Rules are generated per destination so the composed
// system matches the paper's "one algorithm per destination running
// simultaneously" structure.
func NewProgram(g *graph.Graph, acc Accessor) sm.Program {
	n := g.N()
	rules := make([]sm.Rule, 0, n)
	for dd := 0; dd < n; dd++ {
		d := graph.ProcessID(dd)
		rules = append(rules, sm.Rule{
			Name:     fmt.Sprintf("A@%d", d),
			Priority: Priority,
			Guard: func(v *sm.View) bool {
				wantDist, wantParent := target(g, v, acc, d)
				s := acc(v.Self())
				return s.Dist[d] != wantDist || s.Parent[d] != wantParent
			},
			Action: func(v *sm.View) {
				wantDist, wantParent := target(g, v, acc, d)
				s := acc(v.Self())
				if v.Observing() && s.Parent[d] != wantParent {
					v.Observe(obs.Event{Kind: obs.KindRoute, Dest: d, To: wantParent})
				}
				s.Dist[d] = wantDist
				s.Parent[d] = wantParent
			},
		})
	}
	return sm.NewProgram(rules...)
}

// target computes the canonical (Dist, Parent) pair processor v.ID() should
// hold for destination d given its neighbors' current tables.
func target(g *graph.Graph, v *sm.View, acc Accessor, d graph.ProcessID) (int, graph.ProcessID) {
	p := v.ID()
	if p == d {
		return 0, p
	}
	n := g.N()
	bestDist := n
	bestParent := v.Neighbors()[0] // neighbors are sorted: first min is the smallest ID
	for _, q := range v.Neighbors() {
		dq := acc(v.Read(q)).Dist[d]
		if dq < 0 {
			dq = 0 // tolerate ill-typed corruption
		}
		cand := dq + 1
		if cand > n {
			cand = n
		}
		if cand < bestDist {
			bestDist, bestParent = cand, q
		}
	}
	return bestDist, bestParent
}

// CorrectState returns the canonical stabilized routing table for processor
// p on g: true BFS distances and smallest-ID shortest-path parents.
func CorrectState(g *graph.Graph, p graph.ProcessID) *NodeState {
	n := g.N()
	s := &NodeState{Dist: make([]int, n), Parent: make([]graph.ProcessID, n)}
	for dd := 0; dd < n; dd++ {
		d := graph.ProcessID(dd)
		if p == d {
			s.Dist[d] = 0
			s.Parent[d] = p
			continue
		}
		s.Dist[d] = g.Dist(p, d)
		next := g.ShortestPathNext(p, d)
		s.Parent[d] = next[0] // Neighbors() is sorted, so next[0] is the smallest ID
	}
	return s
}

// Correct reports whether processor p's table equals the canonical
// stabilized table (the silent fixpoint of A).
func Correct(g *graph.Graph, p graph.ProcessID, s *NodeState) bool {
	want := CorrectState(g, p)
	for d := 0; d < g.N(); d++ {
		if s.Dist[d] != want.Dist[d] || s.Parent[d] != want.Parent[d] {
			return false
		}
	}
	return true
}

// LoopFree reports whether, for destination d, following Parent pointers
// from every processor reaches d without revisiting a processor. Corrupted
// tables typically violate this (routing cycles), which is exactly the
// hazard SSMFP tolerates.
func LoopFree(g *graph.Graph, d graph.ProcessID, tables []*NodeState) bool {
	for start := 0; start < g.N(); start++ {
		p := graph.ProcessID(start)
		seen := make(map[graph.ProcessID]bool)
		for p != d {
			if seen[p] {
				return false
			}
			seen[p] = true
			p = tables[p].Parent[d]
		}
	}
	return true
}

// RandomState returns a well-typed but arbitrary routing table for p:
// distances uniform in [0, n], parents uniform over N_p (the paper's
// arbitrary initial configuration keeps variables in their domains).
func RandomState(g *graph.Graph, p graph.ProcessID, rng *rand.Rand) *NodeState {
	n := g.N()
	s := &NodeState{Dist: make([]int, n), Parent: make([]graph.ProcessID, n)}
	ns := g.Neighbors(p)
	for d := 0; d < n; d++ {
		s.Dist[d] = rng.Intn(n + 1)
		s.Parent[d] = ns[rng.Intn(len(ns))]
		if graph.ProcessID(d) == p {
			// Even "arbitrary" tables keep Parent ∈ N_p ∪ {p}; give the
			// destination entry a chance to be corrupt too.
			if rng.Intn(2) == 0 {
				s.Dist[d] = 0
				s.Parent[d] = p
			}
		}
	}
	return s
}

// Reframe ports processor p's routing table onto a changed graph — the
// state-model face of a membership epoch. The new slot space may be
// larger or smaller than the table's; entries for destinations both
// graphs share are kept verbatim (after the change they are merely
// arbitrary — possibly wrong — state, which is exactly what A stabilizes
// from), new destinations start at the pessimistic distance n, and any
// parent that is no longer a neighbor of p is re-anchored to p's
// smallest current neighbor. The result is always well-typed (Dist ∈
// [0, n], Parent ∈ N_p ∪ {p}) — the domain A's stabilization guarantee
// is stated over — so a topology change never needs more than ordinary
// re-stabilization, which is the property the elastic cluster layer
// (internal/cluster) leans on when an epoch changes the graph under a
// running deployment.
func Reframe(newG *graph.Graph, p graph.ProcessID, s *NodeState) *NodeState {
	n := newG.N()
	out := &NodeState{Dist: make([]int, n), Parent: make([]graph.ProcessID, n)}
	ns := newG.Neighbors(p)
	nbr := make(map[graph.ProcessID]bool, len(ns))
	for _, q := range ns {
		nbr[q] = true
	}
	for dd := 0; dd < n; dd++ {
		d := graph.ProcessID(dd)
		dist := n
		parent := p
		if len(ns) > 0 {
			parent = ns[0]
		}
		if dd < len(s.Dist) {
			if kept := s.Dist[dd]; kept >= 0 && kept < dist {
				dist = kept
			}
			if kept := s.Parent[dd]; nbr[kept] {
				parent = kept
			}
		}
		if d == p {
			dist, parent = 0, p
		}
		out.Dist[dd], out.Parent[dd] = dist, parent
	}
	return out
}

// CycleCorrupt overwrites the tables of the endpoints of edge (u, v) so
// that, for destination d, u routes to v and v routes to u: a guaranteed
// routing loop. Dist entries are set to plausible-looking small values so
// the corruption is not trivially detectable locally.
func CycleCorrupt(g *graph.Graph, d graph.ProcessID, u, v graph.ProcessID, tables []*NodeState) {
	if !g.HasEdge(u, v) {
		panic(fmt.Sprintf("routing: CycleCorrupt needs an edge (%d,%d)", u, v))
	}
	tables[u].Parent[d] = v
	tables[u].Dist[d] = 2
	tables[v].Parent[d] = u
	tables[v].Dist[d] = 2
}

// NewSlowProgram returns a deliberately slow variant of A for the R_A
// ablation (experiment E-RA): instead of jumping straight to the canonical
// value, each action moves the distance one unit toward it, and the parent
// is corrected only once the distance has settled. The variant is still
// self-stabilizing and silent — it reaches the same fixpoint as NewProgram
// — but its stabilization time R_A grows with the magnitude of the initial
// corruption, letting experiments vary the max(R_A, ·) term of the paper's
// Propositions 5-7 independently of the topology.
func NewSlowProgram(g *graph.Graph, acc Accessor) sm.Program {
	n := g.N()
	rules := make([]sm.Rule, 0, n)
	for dd := 0; dd < n; dd++ {
		d := graph.ProcessID(dd)
		rules = append(rules, sm.Rule{
			Name:     fmt.Sprintf("A@%d", d),
			Priority: Priority,
			Guard: func(v *sm.View) bool {
				wantDist, wantParent := target(g, v, acc, d)
				s := acc(v.Self())
				return s.Dist[d] != wantDist || s.Parent[d] != wantParent
			},
			Action: func(v *sm.View) {
				wantDist, wantParent := target(g, v, acc, d)
				s := acc(v.Self())
				switch {
				case s.Dist[d] < wantDist:
					s.Dist[d]++
				case s.Dist[d] > wantDist:
					s.Dist[d]--
				default:
					if v.Observing() && s.Parent[d] != wantParent {
						v.Observe(obs.Event{Kind: obs.KindRoute, Dest: d, To: wantParent})
					}
					s.Parent[d] = wantParent
				}
			},
		})
	}
	return sm.NewProgram(rules...)
}
