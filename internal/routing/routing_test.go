package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// routeOnlyState wraps a NodeState as a statemodel.State for tests that run
// the routing algorithm alone.
type routeOnlyState struct{ rt *NodeState }

func (s *routeOnlyState) Clone() sm.State { return &routeOnlyState{rt: s.rt.Clone()} }

func access(s sm.State) *NodeState { return s.(*routeOnlyState).rt }

func correctConfig(g *graph.Graph) []sm.State {
	cfg := make([]sm.State, g.N())
	for p := 0; p < g.N(); p++ {
		cfg[p] = &routeOnlyState{rt: CorrectState(g, graph.ProcessID(p))}
	}
	return cfg
}

func randomConfig(g *graph.Graph, rng *rand.Rand) []sm.State {
	cfg := make([]sm.State, g.N())
	for p := 0; p < g.N(); p++ {
		cfg[p] = &routeOnlyState{rt: RandomState(g, graph.ProcessID(p), rng)}
	}
	return cfg
}

func tables(e *sm.Engine) []*NodeState {
	ts := make([]*NodeState, e.Graph().N())
	for p := 0; p < e.Graph().N(); p++ {
		ts[p] = access(e.StateOf(graph.ProcessID(p)))
	}
	return ts
}

func TestCorrectStateIsSilent(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"line":  graph.Line(6),
		"ring":  graph.Ring(7),
		"star":  graph.Star(5),
		"grid":  graph.Grid(3, 3),
		"fig1":  graph.Figure1Network(),
		"tree":  graph.BinaryTree(7),
		"k5":    graph.Complete(5),
		"hcube": graph.Hypercube(3),
	} {
		e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(1), correctConfig(g))
		if !e.Terminal() {
			for p := 0; p < g.N(); p++ {
				if names := e.EnabledRuleNames(graph.ProcessID(p)); len(names) > 0 {
					t.Errorf("%s: processor %d enabled: %v", name, p, names)
				}
			}
			t.Fatalf("%s: canonical tables are not a silent fixpoint", name)
		}
	}
}

func TestStabilizesFromRandomConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(3+rng.Intn(10), 30, rng)
		e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(rng.Int63()), randomConfig(g, rng))
		_, terminal := e.Run(100_000, nil)
		if !terminal {
			t.Fatalf("trial %d: routing did not stabilize on %v", trial, g)
		}
		for p := 0; p < g.N(); p++ {
			if !Correct(g, graph.ProcessID(p), access(e.StateOf(graph.ProcessID(p)))) {
				t.Fatalf("trial %d: processor %d table incorrect after silence", trial, p)
			}
		}
	}
}

func TestStabilizesUnderAdversarialFairDaemon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Grid(3, 4)
	d := daemon.NewWeaklyFair(daemon.NewCentralLIFO(), 3*g.N())
	e := sm.NewEngine(g, NewProgram(g, access), d, randomConfig(g, rng))
	_, terminal := e.Run(2_000_000, nil)
	if !terminal {
		t.Fatal("routing did not stabilize under weakly fair LIFO daemon")
	}
	for p := 0; p < g.N(); p++ {
		if !Correct(g, graph.ProcessID(p), access(e.StateOf(graph.ProcessID(p)))) {
			t.Fatalf("processor %d incorrect", p)
		}
	}
}

func TestStabilizationRoundsModest(t *testing.T) {
	// Under the synchronous daemon, BFS routing should stabilize within
	// O(n) rounds; assert a generous 2n+2 bound to catch regressions.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(12), 40, rng)
		e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(1), randomConfig(g, rng))
		_, terminal := e.Run(1_000_000, nil)
		if !terminal {
			t.Fatal("did not stabilize")
		}
		if e.Rounds() > 2*g.N()+2 {
			t.Errorf("trial %d: stabilization took %d rounds on %v (n=%d)", trial, e.Rounds(), g, g.N())
		}
	}
}

func TestNextHopAfterStabilizationIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(10, 20, rng)
	e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(2), randomConfig(g, rng))
	e.Run(1_000_000, nil)
	for p := 0; p < g.N(); p++ {
		st := access(e.StateOf(graph.ProcessID(p)))
		for d := 0; d < g.N(); d++ {
			if p == d {
				continue
			}
			hop := st.NextHop(graph.ProcessID(d))
			if g.Dist(hop, graph.ProcessID(d)) != g.Dist(graph.ProcessID(p), graph.ProcessID(d))-1 {
				t.Fatalf("nextHop_%d(%d)=%d is not on a minimal path", p, d, hop)
			}
		}
	}
}

func TestLoopFree(t *testing.T) {
	g := graph.Ring(5)
	ts := make([]*NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = CorrectState(g, graph.ProcessID(p))
	}
	for d := 0; d < g.N(); d++ {
		if !LoopFree(g, graph.ProcessID(d), ts) {
			t.Fatalf("canonical tables should be loop-free for destination %d", d)
		}
	}
	CycleCorrupt(g, 0, 2, 3, ts)
	if LoopFree(g, 0, ts) {
		t.Fatal("CycleCorrupt should introduce a routing loop")
	}
	if LoopFree(g, 0, ts) != false || !LoopFree(g, 1, ts) {
		t.Fatal("corruption for destination 0 must not affect destination 1")
	}
}

func TestCycleCorruptRequiresEdge(t *testing.T) {
	g := graph.Line(4)
	ts := make([]*NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = CorrectState(g, graph.ProcessID(p))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-edge")
		}
	}()
	CycleCorrupt(g, 0, 0, 3, ts)
}

func TestCycleCorruptRecovers(t *testing.T) {
	// Inject a routing loop, run A, verify the loop is repaired.
	g := graph.Grid(3, 3)
	cfg := correctConfig(g)
	ts := make([]*NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = access(cfg[p])
	}
	CycleCorrupt(g, 8, 0, 1, ts)
	if LoopFree(g, 8, ts) {
		t.Fatal("setup: expected a loop")
	}
	e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(3), cfg)
	_, terminal := e.Run(100_000, nil)
	if !terminal {
		t.Fatal("did not restabilize")
	}
	if !LoopFree(g, 8, tables(e)) {
		t.Fatal("loop not repaired")
	}
}

func TestRandomStateWellTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.Figure1Network()
	for trial := 0; trial < 50; trial++ {
		for p := 0; p < g.N(); p++ {
			s := RandomState(g, graph.ProcessID(p), rng)
			for d := 0; d < g.N(); d++ {
				if s.Dist[d] < 0 || s.Dist[d] > g.N() {
					t.Fatalf("Dist out of range: %d", s.Dist[d])
				}
				if !g.IsNeighborOrSelf(graph.ProcessID(p), s.Parent[d]) {
					t.Fatalf("Parent %d not in N_%d ∪ {%d}", s.Parent[d], p, p)
				}
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := graph.Line(3)
	s := CorrectState(g, 0)
	c := s.Clone()
	c.Dist[1] = 99
	c.Parent[1] = 0
	if s.Dist[1] == 99 || s.Parent[1] == 0 && s.Dist[1] == 99 {
		t.Fatal("Clone shares backing arrays")
	}
}

// Property: from any random configuration on any random graph, A
// stabilizes to the canonical tables and is then silent.
func TestQuickStabilization(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%8
		g := graph.RandomConnected(n, int(mRaw), rng)
		e := sm.NewEngine(g, NewProgram(g, access), daemon.NewSynchronous(seed), randomConfig(g, rng))
		_, terminal := e.Run(200_000, nil)
		if !terminal {
			return false
		}
		for p := 0; p < g.N(); p++ {
			if !Correct(g, graph.ProcessID(p), access(e.StateOf(graph.ProcessID(p)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowProgramStabilizesToSameFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(8), 20, rng)
		e := sm.NewEngine(g, NewSlowProgram(g, access), daemon.NewSynchronous(rng.Int63()), randomConfig(g, rng))
		_, terminal := e.Run(2_000_000, nil)
		if !terminal {
			t.Fatal("slow variant did not stabilize")
		}
		for p := 0; p < g.N(); p++ {
			if !Correct(g, graph.ProcessID(p), access(e.StateOf(graph.ProcessID(p)))) {
				t.Fatalf("slow variant fixpoint differs at %d", p)
			}
		}
	}
}

func TestSlowProgramIsSlower(t *testing.T) {
	// Same topology, same corrupted start: the slow variant must need
	// more rounds than the fast one (that is its purpose).
	g := graph.Grid(3, 3)
	mk := func(prog sm.Program) int {
		rng := rand.New(rand.NewSource(77))
		e := sm.NewEngine(g, prog, daemon.NewSynchronous(1), randomConfig(g, rng))
		if _, terminal := e.Run(2_000_000, nil); !terminal {
			t.Fatal("did not stabilize")
		}
		return e.Rounds()
	}
	fast := mk(NewProgram(g, access))
	slow := mk(NewSlowProgram(g, access))
	if slow <= fast {
		t.Fatalf("slow variant rounds = %d, fast = %d; expected slower", slow, fast)
	}
}

// TestRestabilizesAcrossTopologyChange is the state-model face of a
// membership epoch: stabilize on the base graph, change the topology
// (join a processor, cut a ring edge) via graph.Topology, reframe every
// stabilized table onto the new graph, and require A to re-stabilize to
// the new canonical fixpoint. This is the guarantee the elastic cluster
// layer leans on — a topology change leaves behind nothing worse than an
// arbitrary configuration.
func TestRestabilizesAcrossTopologyChange(t *testing.T) {
	base := graph.Ring(5)
	e := sm.NewEngine(base, NewProgram(base, access), daemon.NewSynchronous(1), correctConfig(base))
	if !e.Terminal() {
		t.Fatal("base config not silent")
	}

	topo := graph.NewTopology(base)
	joiner := graph.ProcessID(5)
	if err := topo.AddNodeID(joiner); err != nil {
		t.Fatal(err)
	}
	for _, edge := range [][2]graph.ProcessID{{joiner, 0}, {joiner, 2}} {
		if err := topo.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g2, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	cfg := make([]sm.State, g2.N())
	for p := 0; p < g2.N(); p++ {
		if p < base.N() {
			// Survivors carry their old tables onto the new graph.
			cfg[p] = &routeOnlyState{rt: Reframe(g2, graph.ProcessID(p), access(e.StateOf(graph.ProcessID(p))))}
		} else {
			// The joiner boots with an arbitrary (well-typed) table.
			cfg[p] = &routeOnlyState{rt: RandomState(g2, graph.ProcessID(p), rng)}
		}
	}
	for p := 0; p < g2.N(); p++ {
		s := access(cfg[p].(*routeOnlyState))
		if len(s.Dist) != g2.N() || len(s.Parent) != g2.N() {
			t.Fatalf("processor %d table not resized to %d", p, g2.N())
		}
	}

	e2 := sm.NewEngine(g2, NewProgram(g2, access), daemon.NewSynchronous(2), cfg)
	if _, terminal := e2.Run(100_000, nil); !terminal {
		t.Fatal("did not re-stabilize after the topology change")
	}
	for p := 0; p < g2.N(); p++ {
		if !Correct(g2, graph.ProcessID(p), access(e2.StateOf(graph.ProcessID(p)))) {
			t.Fatalf("processor %d table incorrect after re-stabilization", p)
		}
	}
	for d := 0; d < g2.N(); d++ {
		if !LoopFree(g2, graph.ProcessID(d), tables(e2)) {
			t.Fatalf("routes to %d not loop-free", d)
		}
	}
}
