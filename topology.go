package ssmfp

import (
	"math/rand"

	"ssmfp/internal/graph"
)

// Topology is an immutable connected network of processors 0..n-1.
type Topology = graph.Graph

// ProcessID identifies a processor (dense integers 0..n-1).
type ProcessID = graph.ProcessID

// Line returns the path topology 0-1-...-(n-1).
func Line(n int) *Topology { return graph.Line(n) }

// Ring returns the cycle topology on n ≥ 3 processors.
func Ring(n int) *Topology { return graph.Ring(n) }

// Star returns the star topology with center 0 and n-1 leaves.
func Star(n int) *Topology { return graph.Star(n) }

// Complete returns the fully connected topology K_n.
func Complete(n int) *Topology { return graph.Complete(n) }

// BinaryTree returns the complete binary tree on n processors (heap order).
func BinaryTree(n int) *Topology { return graph.BinaryTree(n) }

// Grid returns the rows×cols 2-D mesh.
func Grid(rows, cols int) *Topology { return graph.Grid(rows, cols) }

// Torus returns the rows×cols 2-D torus (both dimensions ≥ 3).
func Torus(rows, cols int) *Topology { return graph.Torus(rows, cols) }

// Hypercube returns the dim-dimensional hypercube on 2^dim processors.
func Hypercube(dim int) *Topology { return graph.Hypercube(dim) }

// Random returns a random connected topology with n processors and about m
// edges, deterministic for a seed.
func Random(n, m int, seed int64) *Topology {
	return graph.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
}

// Custom builds a topology from an explicit edge list.
func Custom(n int, edges [][2]int) *Topology {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(graph.ProcessID(e[0]), graph.ProcessID(e[1]))
	}
	return g.Freeze()
}
