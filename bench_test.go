// Benchmarks regenerating every figure and proposition of the paper (and
// the comparison/extension experiments), one testing.B target per artifact
// — see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured outcomes. Each bench runs the corresponding
// experiment driver from internal/sim and reports its headline measurement
// via b.ReportMetric, failing if the acceptance check breaks.
//
//	go test -bench=. -benchmem
package ssmfp_test

import (
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
	"ssmfp/internal/sim"
)

// BenchmarkFigure1DestinationBufferGraph rebuilds the destination-based
// buffer graph of Figure 1 and verifies it is acyclic with one tree
// component per destination.
func BenchmarkFigure1DestinationBufferGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentF1()
		if !r.Acyclic || !r.AllTrees || r.Components != 5 {
			b.Fatalf("Figure 1 claims violated: %+v", r)
		}
	}
}

// BenchmarkFigure2SSMFPBufferGraph rebuilds SSMFP's two-buffer graph of
// Figure 2 (acyclic when tables are correct, cyclic under the a↔c
// corruption).
func BenchmarkFigure2SSMFPBufferGraph(b *testing.B) {
	var cycleLen int
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentF2()
		if !r.CleanAcyclic || r.CycleLen == 0 {
			b.Fatalf("Figure 2 claims violated: %+v", r)
		}
		cycleLen = r.CycleLen
	}
	b.ReportMetric(float64(cycleLen), "cycle-buffers")
}

// BenchmarkFigure3Replay replays the paper's execution example under the
// scripted daemon and verifies every frame.
func BenchmarkFigure3Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentF3()
		if !r.OK {
			b.Fatalf("Figure 3 replay failed: %v", r.Failures)
		}
	}
}

// BenchmarkFigure4CaterpillarClassification classifies every buffer of an
// adversarial execution into the caterpillar types of Definition 3.
func BenchmarkFigure4CaterpillarClassification(b *testing.B) {
	var observations int
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentF4(int64(i) + 11)
		if !r.Consistent || !r.AllTypesHit {
			b.Fatalf("Figure 4 classification failed: %+v", r)
		}
		observations = r.Seen[1] + r.Seen[2] + r.Seen[3]
	}
	b.ReportMetric(float64(observations), "classified-buffers")
}

// BenchmarkProp4InvalidDeliveries sweeps network size with every buffer
// stuffed with invalid messages and checks the 2n bound of Proposition 4.
func BenchmarkProp4InvalidDeliveries(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentP4(int64(i)+3, []int{4, 6, 8})
		if !r.WithinBound {
			b.Fatalf("Proposition 4 bound violated: %+v", r.Rows)
		}
		worst = 0
		for _, row := range r.Rows {
			if f := float64(row.MaxPerDest) / float64(row.Bound); f > worst {
				worst = f
			}
		}
	}
	b.ReportMetric(worst, "worst-fraction-of-2n")
}

// BenchmarkProp5DeliveryLatency sweeps Δ and D under adversarial fair
// scheduling and saturating cross-traffic, checking the worst observed
// delivery latency against the Δ^D bound of Proposition 5.
func BenchmarkProp5DeliveryLatency(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentP5(int64(i) + 5)
		if !r.WithinBound {
			b.Fatalf("Proposition 5 bound violated: %+v", r.Rows)
		}
		for _, row := range r.Rows {
			if float64(row.MaxLatency) > worst {
				worst = float64(row.MaxLatency)
			}
		}
	}
	b.ReportMetric(worst, "worst-latency-rounds")
}

// BenchmarkProp6DelayWaiting measures the delay before a loaded source's
// first emission and the waiting time between its emissions (Prop. 6).
func BenchmarkProp6DelayWaiting(b *testing.B) {
	var maxWait float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentP6(int64(i) + 5)
		for _, row := range r.Rows {
			if float64(row.MaxWaiting) > maxWait {
				maxWait = float64(row.MaxWaiting)
			}
		}
	}
	b.ReportMetric(maxWait, "max-waiting-rounds")
}

// BenchmarkProp7AmortizedComplexity saturates lines of growing diameter
// and checks amortized rounds per delivery against the Θ(D) of Prop. 7.
func BenchmarkProp7AmortizedComplexity(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentP7(int64(i)+5, []int{2, 4, 6, 8})
		if !r.Within {
			b.Fatalf("Proposition 7 bound violated: %+v", r.Rows)
		}
		slope = r.Fit.Slope
	}
	b.ReportMetric(slope, "amortized-slope-vs-D")
}

// BenchmarkX1BaselineVsSSMFP contrasts SSMFP with the classical
// controllers from identical corrupted configurations.
func BenchmarkX1BaselineVsSSMFP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX1(int64(i) + 9)
		if !r.SSMFPOK {
			b.Fatalf("SSMFP lost the comparison it must win: %+v", r.Rows)
		}
	}
}

// BenchmarkX2FaultFreeOverhead quantifies the fault-free per-message move
// overhead of SSMFP over the atomic classical controller (§4's "no
// significant over cost" claim).
func BenchmarkX2FaultFreeOverhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX2(int64(i) + 13)
		overhead = r.MaxOverhead
		if overhead >= 8 {
			b.Fatalf("overhead %.2f no longer a small constant", overhead)
		}
	}
	b.ReportMetric(overhead, "max-overhead-factor")
}

// BenchmarkX3MessagePassing runs the goroutine/channel port under
// corruption and loss, checking exactly-once end to end.
func BenchmarkX3MessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX3(int64(i) + 21)
		if !r.AllOK {
			b.Fatalf("message-passing port violated exactly-once: %+v", r.Rows)
		}
	}
}

// BenchmarkX4AcyclicCoverBufferEconomy measures the §4 alternative scheme:
// k buffers per node (3 for a ring, 2 for a tree) against the destination
// schemes, with the path-stretch cost.
func BenchmarkX4AcyclicCoverBufferEconomy(b *testing.B) {
	var ringK float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX4(int64(i) + 31)
		if !r.AllOK {
			b.Fatalf("acyclic controller failed: %+v", r.Rows)
		}
		ringK = float64(r.Rows[0].AcyclicK)
	}
	b.ReportMetric(ringK, "ring-buffers-per-node")
}

// BenchmarkX5ChoicePolicyAblation compares the paper's FIFO queue with
// rotating and unfair lowest-ID selection under a loaded star.
func BenchmarkX5ChoicePolicyAblation(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX5(int64(i) + 33)
		byPolicy := map[string]sim.X5Row{}
		for _, row := range r.Rows {
			byPolicy[row.Policy] = row
		}
		q, l := byPolicy["fifo-queue"], byPolicy["lowest-id"]
		if !q.AllDelivered {
			b.Fatal("queue policy must deliver everything")
		}
		if q.ProbeDelivery > 0 {
			penalty = float64(l.ProbeDelivery) / float64(q.ProbeDelivery)
		}
	}
	b.ReportMetric(penalty, "unfair-probe-delay-factor")
}

// BenchmarkX6FaultStorms verifies the post-fault exactly-once guarantee
// under transient fault storms of growing intensity.
func BenchmarkX6FaultStorms(b *testing.B) {
	var compromised float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentX6(int64(i) + 35)
		if !r.AllOK {
			b.Fatalf("fault storm broke the guarantee: %+v", r.Rows)
		}
		compromised = float64(r.Rows[len(r.Rows)-1].Compromised)
	}
	b.ReportMetric(compromised, "messages-compromised")
}

// BenchmarkRARoutingStabilizationAblation isolates the R_A branch of the
// max(R_A, Δ^D) bounds: with a deliberately slowed routing algorithm, the
// probe's generation delay grows with the source's stabilization work.
func BenchmarkRARoutingStabilizationAblation(b *testing.B) {
	var slowRA float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentRA(int64(i) + 47)
		if !r.Tracks {
			b.Fatalf("delay should track R_A: %+v", r.Rows)
		}
		slowRA = float64(r.Rows[1].RoutingRound)
	}
	b.ReportMetric(slowRA, "slow-RA-rounds")
}

// BenchmarkExhaustiveModelCheck explores every central-daemon schedule of
// the Figure 3 corruption scenario and verifies SP on all of them.
func BenchmarkExhaustiveModelCheck(b *testing.B) {
	var states float64
	for i := 0; i < b.N; i++ {
		g := graph.Figure3Network()
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).RT.Parent[1] = 2
		cfg[0].(*core.Node).RT.Dist[1] = 2
		cfg[2].(*core.Node).RT.Parent[1] = 0
		cfg[2].(*core.Node).RT.Dist[1] = 2
		cfg[1].(*core.Node).FW.Dests[1].BufR = &core.Message{
			Payload: "data", LastHop: 2, Color: 0, UID: 1 << 50, Src: 1, Dest: 1, Valid: false}
		cfg[2].(*core.Node).FW.Enqueue("data", 1)
		r := explore.Explore(g, core.FullProgram(g), cfg, explore.CoreOptions(g))
		if !r.OK() {
			b.Fatalf("model check failed: %s (inv=%v term=%v)", r, r.InvariantErr, r.TerminalErr)
		}
		states = float64(r.States)
	}
	b.ReportMetric(states, "states-explored")
}

// BenchmarkEnginePerfSweep runs the naive-vs-incremental enabled-set
// sweep (E-EP), checking the acceptance bar (identical executions, ≥3×
// fewer guard evaluations per step on the 20×20 grid) and reporting the
// observed 20×20 ratio.
func BenchmarkEnginePerfSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := sim.ExperimentEnginePerf(int64(i) + 42)
		if !r.AllMatch {
			b.Fatal("incremental and naive executions diverged")
		}
		for _, row := range r.Rows {
			if row.Topology == "grid 20x20" {
				if row.Ratio < 3 {
					b.Fatalf("20x20 guard-eval ratio %.2f < 3x", row.Ratio)
				}
				ratio = row.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "guard-eval-ratio-20x20")
}
