package ssmfp_test

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ssmfp"
)

func TestQuickstartCleanNetwork(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Line(5))
	net.Send(0, 4, "hello")
	report := net.Run()
	if !report.OK() {
		t.Fatalf("report: %s", report)
	}
	if report.Delivered != 1 || report.Generated != 1 {
		t.Fatalf("report: %+v", report)
	}
	ds := net.Deliveries()
	if len(ds) != 1 || ds[0].Payload != "hello" || ds[0].To != 4 || !ds[0].Valid {
		t.Fatalf("deliveries: %+v", ds)
	}
	if !strings.Contains(report.String(), "SP satisfied") {
		t.Fatalf("String: %s", report)
	}
}

func TestCorruptStartStillExactlyOnce(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Grid(3, 3),
		ssmfp.WithCorruptStart(42),
		ssmfp.WithDaemon("central-random"))
	for p := ssmfp.ProcessID(0); p < 9; p++ {
		net.Send(p, (p+4)%9, "from-corrupt-start")
	}
	report := net.Run()
	if !report.OK() {
		t.Fatalf("snap-stabilization failed: %s", report)
	}
	if report.Generated != 9 || report.Delivered != 9 {
		t.Fatalf("accounting: %+v", report)
	}
}

func TestAllDaemonKinds(t *testing.T) {
	for _, kind := range []string{
		"synchronous", "central-random", "central-round-robin", "distributed", "weakly-fair-lifo",
	} {
		t.Run(kind, func(t *testing.T) {
			net := ssmfp.NewNetwork(ssmfp.Ring(5),
				ssmfp.WithDaemon(kind), ssmfp.WithSeed(7))
			net.Send(0, 2, "x")
			net.Send(3, 1, "y")
			if report := net.Run(); !report.OK() {
				t.Fatalf("%s: %s", kind, report)
			}
		})
	}
}

func TestUnknownDaemonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ssmfp.NewNetwork(ssmfp.Line(3), ssmfp.WithDaemon("fifo-magic"))
}

func TestSendValidation(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Line(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range processor")
		}
	}()
	net.Send(0, 7, "nope")
}

func TestDeliveryHandler(t *testing.T) {
	var got []ssmfp.Delivery
	net := ssmfp.NewNetwork(ssmfp.Line(4),
		ssmfp.WithDeliveryHandler(func(d ssmfp.Delivery) { got = append(got, d) }))
	net.Send(0, 3, "cb")
	net.Run()
	if len(got) != 1 || got[0].Payload != "cb" || got[0].To != 3 {
		t.Fatalf("handler saw: %+v", got)
	}
}

func TestStepAndIncrementalReport(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Line(3))
	net.Send(0, 2, "step-by-step")
	steps := 0
	for net.Step() {
		steps++
		if steps > 1000 {
			t.Fatal("did not quiesce")
		}
	}
	r := net.Report()
	if !r.OK() || r.Steps != steps {
		t.Fatalf("report: %+v (steps=%d)", r, steps)
	}
}

func TestWithMaxStepsCapsRun(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Line(6), ssmfp.WithMaxSteps(3))
	net.Send(0, 5, "far")
	r := net.Run()
	if r.OK() {
		t.Fatal("3 steps cannot deliver across 5 hops")
	}
	if r.Steps != 3 {
		t.Fatalf("steps = %d, want 3", r.Steps)
	}
}

func TestCustomTopology(t *testing.T) {
	tp := ssmfp.Custom(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if tp.N() != 4 || tp.Diameter() != 2 {
		t.Fatalf("custom topology wrong: %v", tp)
	}
	net := ssmfp.NewNetwork(tp)
	net.Send(0, 2, "via-ring")
	if !net.Run().OK() {
		t.Fatal("custom topology run failed")
	}
}

func TestTopologyConstructors(t *testing.T) {
	cases := []struct {
		tp   *ssmfp.Topology
		n, d int
	}{
		{ssmfp.Line(4), 4, 3},
		{ssmfp.Ring(6), 6, 3},
		{ssmfp.Star(5), 5, 2},
		{ssmfp.Complete(4), 4, 1},
		{ssmfp.BinaryTree(7), 7, 4},
		{ssmfp.Grid(2, 3), 6, 3},
		{ssmfp.Torus(3, 3), 9, 2},
		{ssmfp.Hypercube(3), 8, 3},
		{ssmfp.Random(7, 12, 3), 7, -1},
	}
	for i, c := range cases {
		if c.tp.N() != c.n {
			t.Errorf("case %d: n = %d, want %d", i, c.tp.N(), c.n)
		}
		if c.d >= 0 && c.tp.Diameter() != c.d {
			t.Errorf("case %d: D = %d, want %d", i, c.tp.Diameter(), c.d)
		}
	}
}

func TestLiveNetworkEndToEnd(t *testing.T) {
	live := ssmfp.NewLiveNetwork(ssmfp.Grid(2, 3), ssmfp.LiveOptions{
		Seed: 9, CorruptStart: true, LossRate: 0.1, DupRate: 0.2})
	defer live.Close()
	var ids []uint64
	for p := ssmfp.ProcessID(0); p < 6; p++ {
		uid, err := live.Send(p, (p+3)%6, "live")
		if err != nil {
			t.Fatalf("Send(%d): %v", p, err)
		}
		ids = append(ids, uid)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if live.DeliveredExactlyOnce(ids...) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !live.DeliveredExactlyOnce(ids...) {
		t.Fatalf("live network failed exactly-once; deliveries: %d", len(live.Deliveries()))
	}
}

func TestLiveNetworkClosedGuards(t *testing.T) {
	live := ssmfp.NewLiveNetwork(ssmfp.Line(3), ssmfp.LiveOptions{Seed: 2})
	uid, err := live.Send(0, 2, "pre-close")
	if err != nil {
		t.Fatalf("Send on open network: %v", err)
	}
	if !live.WaitDelivered(1, 30*time.Second) {
		t.Fatal("pre-close message not delivered")
	}
	live.Close()
	live.Close() // idempotent: a second Close must not panic
	if _, err := live.Send(0, 2, "post-close"); err != ssmfp.ErrClosed {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
	start := time.Now()
	if live.WaitDelivered(2, 30*time.Second) {
		t.Fatal("WaitDelivered reported an impossible delivery after Close")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitDelivered blocked %v on a closed network", elapsed)
	}
	if !live.DeliveredExactlyOnce(uid) {
		t.Fatal("closed network lost its delivery records")
	}
}

// Property: any random topology, any seed, corrupted start, a handful of
// messages — Specification SP holds through the facade.
func TestQuickFacadeSnapStabilization(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 3 + int(nRaw)%6
		tp := ssmfp.Random(n, 2*n, seed)
		net := ssmfp.NewNetwork(tp, ssmfp.WithCorruptStart(seed), ssmfp.WithDaemon("distributed"))
		k := 1 + int(kRaw)%5
		for i := 0; i < k; i++ {
			net.Send(ssmfp.ProcessID(i%n), ssmfp.ProcessID((i+1)%n), "q")
		}
		return net.Run().OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWithChoicePolicy(t *testing.T) {
	for _, policy := range []string{"fifo-queue", "rotating", "lowest-id"} {
		net := ssmfp.NewNetwork(ssmfp.Star(5), ssmfp.WithChoicePolicy(policy))
		net.Send(1, 3, "p")
		if !net.Run().OK() {
			t.Fatalf("policy %s failed", policy)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy must panic")
		}
	}()
	ssmfp.NewNetwork(ssmfp.Line(3), ssmfp.WithChoicePolicy("coin-flip"))
}

func TestInjectFaultsKeepsPostFaultGuarantee(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Grid(3, 3), ssmfp.WithDaemon("central-random"), ssmfp.WithSeed(5))
	net.Send(0, 8, "pre-fault")
	for i := 0; i < 10; i++ {
		net.Step()
	}
	net.InjectFaults(7, 5)
	net.Send(8, 0, "post-fault-1")
	net.Send(3, 5, "post-fault-2")
	report := net.Run()
	if !report.Quiescent || len(report.Violations) != 0 || report.Undelivered != 0 {
		t.Fatalf("post-fault guarantee broken: %+v", report)
	}
}

func TestPendingAccessor(t *testing.T) {
	net := ssmfp.NewNetwork(ssmfp.Line(3))
	if net.Pending() != 0 {
		t.Fatal("fresh network has nothing pending")
	}
	net.Send(0, 2, "a")
	net.Send(1, 0, "b")
	if net.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", net.Pending())
	}
	net.Run()
	if net.Pending() != 0 {
		t.Fatal("run must drain pending")
	}
}
