package ssmfp_test

import (
	"fmt"

	"ssmfp"
)

// The basic flow: build a topology, send, run to quiescence, inspect.
func ExampleNewNetwork() {
	net := ssmfp.NewNetwork(ssmfp.Line(4))
	net.Send(0, 3, "hello")
	report := net.Run()
	fmt.Println(report.OK(), report.Generated, report.Delivered)
	// Output: true 1 1
}

// Snap-stabilization: the initial configuration is fully corrupted, yet
// messages are accepted immediately and delivered exactly once.
func ExampleWithCorruptStart() {
	net := ssmfp.NewNetwork(ssmfp.Ring(6), ssmfp.WithCorruptStart(7))
	net.Send(1, 4, "through the rubble")
	report := net.Run()
	fmt.Println(report.OK())
	// Output: true
}

// Deliveries carry the payload, endpoints and validity; initial garbage
// surfacing from corrupted buffers is marked invalid.
func ExampleNetwork_Deliveries() {
	net := ssmfp.NewNetwork(ssmfp.Line(3))
	net.Send(2, 0, "west-bound")
	net.Run()
	for _, d := range net.Deliveries() {
		fmt.Println(d.Payload, d.From, "→", d.To, d.Valid)
	}
	// Output: west-bound 2 → 0 true
}

// The weakly fair adversarial daemon of the paper's proofs is available
// alongside synchronous, central and distributed schedulers.
func ExampleWithDaemon() {
	net := ssmfp.NewNetwork(ssmfp.Star(5), ssmfp.WithDaemon("weakly-fair-lifo"))
	net.Send(1, 4, "via the center")
	fmt.Println(net.Run().OK())
	// Output: true
}
