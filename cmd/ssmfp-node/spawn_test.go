package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ssmfp/internal/telemetry"
)

// TestMain lets the spawn tests fork this test binary as the node
// executable: runSpawn re-execs os.Executable(), and with the child
// marker set in the environment the fork runs main() (the node CLI,
// whose flags runSpawn itself constructs) instead of the test harness.
func TestMain(m *testing.M) {
	if os.Getenv("SSMFP_NODE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// clusterConfig is a small, fast loopback cluster in rate mode.
func clusterConfig() config {
	return config{
		spawn:    3,
		topology: "ring",
		messages: 12,
		rate:     200,
		arrival:  "constant",
		seed:     7,
		tick:     2 * time.Millisecond,
		timeout:  30 * time.Second,
	}
}

// TestSpawnClusterExactlyOnce is the baseline: a uniform-version cluster
// passes the judge.
func TestSpawnClusterExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	if err := run(clusterConfig()); err != nil {
		t.Fatalf("uniform cluster failed: %v", err)
	}
}

// TestSpawnMixedTagVersionsFailLoudly is the cross-version regression
// test: a cluster where one node still speaks the v1 text tags (an old
// binary that was never redeployed) must fail the judge loudly — via the
// per-node mismatch counters and the cluster-wide version-coherence
// check — even though every message is delivered exactly once.
func TestSpawnMixedTagVersionsFailLoudly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	cfg := clusterConfig()
	cfg.legacyNodes = "1"
	err := run(cfg)
	if err == nil {
		t.Fatal("mixed v1/v2 cluster passed the judge — version skew must fail loudly")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("mixed cluster failed for the wrong reason: %v", err)
	}
}

// TestSpawnTelemetryStream: -telemetry-out gives every child its own
// JSONL snapshot stream, each line schema-valid and attributed to its
// node.
func TestSpawnTelemetryStream(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	cfg := clusterConfig()
	cfg.telemetryOut = filepath.Join(t.TempDir(), "telemetry.jsonl")
	cfg.telemetryEvery = 50 * time.Millisecond
	if err := run(cfg); err != nil {
		t.Fatalf("cluster failed: %v", err)
	}
	for i := 0; i < cfg.spawn; i++ {
		path := fmt.Sprintf("%s.node%d", cfg.telemetryOut, i)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("node %d wrote no telemetry stream: %v", i, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) == 0 {
			t.Fatalf("node %d stream empty", i)
		}
		for _, line := range lines {
			snap, err := telemetry.ParseSnapshot([]byte(line))
			if err != nil {
				t.Fatalf("node %d stream line invalid: %v", i, err)
			}
			if want := fmt.Sprintf("node%d", i); snap.Node != want {
				t.Fatalf("snapshot node %q, want %q", snap.Node, want)
			}
			if len(snap.Samples) == 0 {
				t.Fatalf("node %d snapshot carries no samples", i)
			}
		}
	}
}
