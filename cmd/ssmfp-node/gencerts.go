package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ssmfp/internal/graph"
	"ssmfp/internal/secure"
)

// certSet names the on-disk files of one provisioned trust domain: the
// CA pair, one node credential per processor, and the two human-role
// credentials (operator mutates the admin plane, observer only reads).
// The spawn launcher builds one in its temp dir and hands each child its
// own slice of it; -gen-certs writes the same layout somewhere durable.
type certSet struct {
	dir string
	n   int
}

func (c *certSet) caCert() string { return filepath.Join(c.dir, "ca.pem") }
func (c *certSet) caKey() string  { return filepath.Join(c.dir, "ca.key") }
func (c *certSet) nodeCert(p graph.ProcessID) string {
	return filepath.Join(c.dir, fmt.Sprintf("node-%d.pem", p))
}
func (c *certSet) nodeKey(p graph.ProcessID) string {
	return filepath.Join(c.dir, fmt.Sprintf("node-%d.key", p))
}
func (c *certSet) roleCert(role secure.Role) string {
	return filepath.Join(c.dir, role.String()+".pem")
}
func (c *certSet) roleKey(role secure.Role) string {
	return filepath.Join(c.dir, role.String()+".key")
}

// provisionCerts mints a fresh CA and the full credential set for an
// n-node cluster into dir, returning the live CA (the byzantine rogue
// needs it to mint its own bad certificates) alongside the file layout.
func provisionCerts(dir string, n int) (*secure.CA, *certSet, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	ca, err := secure.GenCA("ssmfp-cluster-ca")
	if err != nil {
		return nil, nil, err
	}
	set := &certSet{dir: dir, n: n}
	if err := ca.WriteFiles(set.caCert(), set.caKey()); err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		p := graph.ProcessID(i)
		cred, err := ca.IssueNode(p)
		if err != nil {
			return nil, nil, err
		}
		if err := cred.WriteFiles(set.nodeCert(p), set.nodeKey(p)); err != nil {
			return nil, nil, err
		}
	}
	for _, role := range []secure.Role{secure.RoleOperator, secure.RoleObserver} {
		cred, err := ca.Issue("ssmfp-"+role.String(), role)
		if err != nil {
			return nil, nil, err
		}
		if err := cred.WriteFiles(set.roleCert(role), set.roleKey(role)); err != nil {
			return nil, nil, err
		}
	}
	return ca, set, nil
}

// runGenCerts is the -gen-certs helper: provision a trust domain on disk
// so operators can run TLS clusters by hand. Prints the layout as JSON.
func runGenCerts(cfg config) error {
	n := cfg.n
	if n == 0 {
		n = cfg.spawn
	}
	if n < 1 {
		return fmt.Errorf("-gen-certs needs -n (how many node credentials to mint)")
	}
	_, set, err := provisionCerts(cfg.certsDir, n)
	if err != nil {
		return err
	}
	files := []string{set.caCert(), set.caKey()}
	for i := 0; i < n; i++ {
		files = append(files, set.nodeCert(graph.ProcessID(i)), set.nodeKey(graph.ProcessID(i)))
	}
	for _, role := range []secure.Role{secure.RoleOperator, secure.RoleObserver} {
		files = append(files, set.roleCert(role), set.roleKey(role))
	}
	return printJSON(struct {
		Dir   string   `json:"dir"`
		Nodes int      `json:"nodes"`
		Files []string `json:"files"`
	}{cfg.certsDir, n, files})
}
