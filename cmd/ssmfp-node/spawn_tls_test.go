package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpawnTLSClusterExactlyOnce: the spawn judge with -require-tls
// provisions a trust domain, forks children speaking mutual TLS on every
// link, scrapes them over https as an operator, and still verifies
// exactly-once — with zero rejections, since everyone is legitimate.
func TestSpawnTLSClusterExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	cfg := clusterConfig()
	cfg.requireTLS = true
	if err := run(cfg); err != nil {
		t.Fatalf("TLS cluster failed: %v", err)
	}
}

// TestByzantineJudge is the tentpole scenario end to end: a mutual-TLS
// cluster under paced load is struck by a rogue with self-signed,
// wrong-role and alien certificates; the judge must hold exactly-once
// AND balance every injected frame against the right rejection counter.
func TestByzantineJudge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	cfg := clusterConfig()
	cfg.byzantine = true
	cfg.burst = 3
	if err := run(cfg); err != nil {
		t.Fatalf("byzantine judge failed: %v", err)
	}
}

// TestGenCerts: the -gen-certs helper writes a complete, loadable trust
// domain where it is told to.
func TestGenCerts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "certs")
	cfg := config{genCerts: true, n: 2, certsDir: dir}
	if err := run(cfg); err != nil {
		t.Fatalf("gen-certs: %v", err)
	}
	for _, f := range []string{
		"ca.pem", "ca.key",
		"node-0.pem", "node-0.key", "node-1.pem", "node-1.key",
		"operator.pem", "operator.key", "observer.pem", "observer.key",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

// TestRequireTLSRefusesPlaintext locks the client-side policy: an
// explicit http:// target under -require-tls must be refused before any
// byte leaves the process.
func TestRequireTLSRefusesPlaintext(t *testing.T) {
	cfg := config{requireTLS: true}
	if err := checkTargetScheme(cfg, "http://127.0.0.1:1/admin"); err == nil {
		t.Fatal("-require-tls accepted a plaintext target")
	}
	if err := checkTargetScheme(config{}, "https://127.0.0.1:1/admin"); err == nil {
		t.Fatal("https target accepted without a CA to verify it")
	}
	if _, _, err := clientFromFlags(config{requireTLS: true}); err == nil {
		t.Fatal("-require-tls with no certificates built a client")
	}
}
