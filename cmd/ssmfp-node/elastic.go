package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"ssmfp/internal/cluster"
	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/transport"
)

// runElastic is the churn judge: the -spawn launcher's elastic sibling.
// It forks a base ring of -serve nodes on loopback TCP, then drives the
// full membership lifecycle against them from an operator console while
// background injectors keep live traffic flowing:
//
//  1. join two fresh nodes (new slots, new wires, epoch broadcast),
//  2. gracefully cut one base link (two-phase: routing off, then wire),
//  3. drain one base member under the sustained load and watch its
//     process exit once the detach epoch lands,
//
// and finally verifies exactly-once delivery over everything injected
// across all of it, joining the live nodes' delivery ledgers with the
// drained node's ledger (cached before its process left). UID streams
// restart with a node's incarnation, so the ledger keys on
// (payload, uid) — every injection stream here uses a distinct payload.
func runElastic(cfg config) error {
	n := cfg.spawn
	if n == 0 {
		n = 4
	}
	if n < 4 {
		return fmt.Errorf("-elastic needs -spawn >= 4 (got %d)", n)
	}
	joinA := graph.ProcessID(n)     // joins on (A,0) and (A,2)
	joinB := graph.ProcessID(n + 1) // joins on (B,1) and (B,3)
	drainTarget := graph.ProcessID(n - 1)

	// One loopback wire port per slot, joiners included: the peers file
	// covers the whole slot space up front, so every child — present and
	// future — can dial every other. (The epochs redundantly carry the
	// same address book; a real deployment would rely on that instead.)
	wire := make(map[graph.ProcessID]string, n+2)
	for p := graph.ProcessID(0); int(p) < n+2; p++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		wire[p] = l.Addr().String()
		l.Close()
	}

	dir, err := os.MkdirTemp("", "ssmfp-elastic-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	peersPath := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(peersPath, []byte(transport.FormatPeers(wire)), 0o644); err != nil {
		return err
	}

	// Topology files: the base ring for the initial members, and one
	// successively larger graph per joiner — a joining process boots on
	// the post-join topology (it brings its own wires up; the epoch
	// brings everyone else's).
	base := graph.Ring(n)
	baseEdges := base.Edges()
	joinedA, err := buildTopo(n+1, append(append([][2]graph.ProcessID{}, baseEdges...),
		[2]graph.ProcessID{joinA, 0}, [2]graph.ProcessID{joinA, 2}))
	if err != nil {
		return err
	}
	joinedB, err := buildTopo(n+2, append(append([][2]graph.ProcessID{}, joinedA.Edges()...),
		[2]graph.ProcessID{joinB, 1}, [2]graph.ProcessID{joinB, 3}))
	if err != nil {
		return err
	}
	topoPaths := map[string]*graph.Graph{"base.txt": base, "join-a.txt": joinedA, "join-b.txt": joinedB}
	for name, g := range topoPaths {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(graph.Format(g)), 0o644); err != nil {
			return err
		}
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	children := make(map[graph.ProcessID]*serveChild)
	defer func() {
		for _, c := range children {
			c.release(5 * time.Second)
		}
	}()
	boot := func(id graph.ProcessID, topoName string) (*serveChild, error) {
		c, err := spawnServe(self, id, filepath.Join(dir, topoName), peersPath, cfg)
		if err != nil {
			return nil, err
		}
		children[id] = c
		return c, nil
	}

	// Base ring up, console over it.
	mgr := cluster.NewManager(graph.NewTopology(base))
	mgr.PollInterval = 25 * time.Millisecond
	for p := graph.ProcessID(0); int(p) < n; p++ {
		c, err := boot(p, "base.txt")
		if err != nil {
			return err
		}
		mgr.Attach(p, c.hc, wire[p])
	}
	for p := graph.ProcessID(0); int(p) < n; p++ {
		st, err := children[p].hc.Status()
		if err != nil {
			return fmt.Errorf("node %d never answered status: %w", p, err)
		}
		if len(st.Members) != n {
			return fmt.Errorf("node %d booted with %d members, want %d", p, len(st.Members), n)
		}
	}

	// Sustained background load between base members that stay put for
	// the whole scenario; it keeps flowing through every membership
	// change, including straight through the draining node (0↔2 transits
	// the n-1 side of the ring once (0,1) is cut).
	led := newLedger()
	inject := func(src, dst graph.ProcessID, count int, payload string) ([]uint64, error) {
		rep, err := children[src].hc.Inject(src, dst, count, payload)
		if err != nil {
			return nil, err
		}
		return rep.UIDs, nil
	}
	stopLoad := load.Sustain(inject, []load.SustainedStream{
		{Src: 0, Dst: 2, Payload: "load-0-2"},
		{Src: 2, Dst: 0, Payload: "load-2-0"},
	}, led.add)

	violations := []string{}
	badf := func(format string, a ...any) { violations = append(violations, fmt.Sprintf(format, a...)) }

	// Join two nodes under load.
	for _, j := range []struct {
		id    graph.ProcessID
		topo  string
		peers []graph.ProcessID
	}{{joinA, "join-a.txt", []graph.ProcessID{0, 2}}, {joinB, "join-b.txt", []graph.ProcessID{1, 3}}} {
		c, err := boot(j.id, j.topo)
		if err != nil {
			return fmt.Errorf("joiner %d: %w", j.id, err)
		}
		if err := mgr.JoinNode(j.id, wire[j.id], c.hc, j.peers...); err != nil {
			return fmt.Errorf("join %d: %w", j.id, err)
		}
		out := fmt.Sprintf("join-%d-out", j.id)
		in := fmt.Sprintf("join-%d-in", j.id)
		rep, err := mgr.Inject(j.id, j.peers[1], 20, out)
		if err != nil {
			return fmt.Errorf("inject from joiner %d: %w", j.id, err)
		}
		led.add(out, rep.UIDs)
		rep, err = mgr.Inject(j.peers[0], j.id, 20, in)
		if err != nil {
			return fmt.Errorf("inject to joiner %d: %w", j.id, err)
		}
		led.add(in, rep.UIDs)
	}

	// Graceful link cut under load: (0,1) is safe to lose — the ring
	// minus it is a line, and the joiners add chords besides.
	if err := mgr.CutLink(0, 1); err != nil {
		return fmt.Errorf("cut (0,1): %w", err)
	}

	// Burst at the drain target, wait for the burst to land there, cache
	// its ledger — its process exits when the detach epoch arrives, so
	// the judge must hold its deliveries before asking for the drain.
	const burst = 30
	rep, err := mgr.Inject(0, drainTarget, burst, "drain-burst")
	if err != nil {
		return fmt.Errorf("drain burst: %w", err)
	}
	led.add("drain-burst", rep.UIDs)
	drainedLedger, err := awaitDeliveries(children[drainTarget].hc, "drain-burst", rep.Sent, cfg.timeout)
	if err != nil {
		return err
	}
	healed, err := mgr.Drain(drainTarget)
	if err != nil {
		return fmt.Errorf("drain %d: %w", drainTarget, err)
	}
	if c := children[drainTarget]; !c.reap(10 * time.Second) {
		badf("node %d did not exit after its detach epoch", drainTarget)
	}
	delete(children, drainTarget)

	// Load off; judge everything.
	stopLoad()
	sent := led.snapshot()

	seen, verr := collectDeliveries(children, drainedLedger, sent, cfg.timeout)
	if verr != nil {
		badf("%v", verr)
	}
	for key, cnt := range seen {
		if _, ours := sent[key]; !ours {
			badf("delivery of unknown message %s", key)
		} else if cnt > 1 {
			badf("message %s delivered %d times", key, cnt)
		}
	}
	missing := 0
	for key := range sent {
		if seen[key] == 0 {
			missing++
			if missing <= 10 {
				badf("message %s never delivered", key)
			}
		}
	}
	if missing > 10 {
		badf("... and %d more undelivered messages", missing-10)
	}

	// Final control-plane coherence: every surviving node at the console's
	// epoch, membership = base + 2 joiners - 1 drained, no status errors.
	cs := mgr.Status()
	for id, msg := range cs.Errors {
		badf("node %d status: %s", id, msg)
	}
	if want := n + 1; len(cs.Members) != want {
		badf("cluster has %d members, want %d", len(cs.Members), want)
	}
	for id, st := range cs.Nodes {
		if st.Epoch != cs.Epoch.Seq {
			badf("node %d at epoch %d, console at %d", id, st.Epoch, cs.Epoch.Seq)
		}
	}

	summary := struct {
		Nodes      int                  `json:"nodes"`
		Joined     []graph.ProcessID    `json:"joined"`
		Cut        [2]graph.ProcessID   `json:"cut"`
		Drained    graph.ProcessID      `json:"drained"`
		Healed     [][2]graph.ProcessID `json:"healed"`
		Epoch      uint64               `json:"epoch"`
		Sent       int                  `json:"sent"`
		Delivered  int                  `json:"delivered"`
		Violations []string             `json:"violations"`
	}{
		Nodes:   len(cs.Members),
		Joined:  []graph.ProcessID{joinA, joinB},
		Cut:     [2]graph.ProcessID{0, 1},
		Drained: drainTarget,
		Healed:  healed,
		Epoch:   cs.Epoch.Seq,
		Sent:    len(sent),
		Delivered: func() (d int) {
			for _, c := range seen {
				d += c
			}
			return
		}(),
		Violations: violations,
	}
	enc, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(enc))
	if len(violations) > 0 {
		return fmt.Errorf("%d elastic-cluster violations", len(violations))
	}
	fmt.Fprintf(os.Stderr, "ssmfp-node: elastic churn (%d→%d→%d nodes, %d messages) exactly-once verified\n",
		n, n+2, n+1, len(sent))
	return nil
}

// buildTopo assembles and freezes a graph from a slot count and edge set.
func buildTopo(slots int, edges [][2]graph.ProcessID) (*graph.Graph, error) {
	topo, err := topoFrom(slots, edges)
	if err != nil {
		return nil, err
	}
	return topo.Build()
}

// ledger tracks every injected message by (payload, uid) — the key that
// stays unique across node incarnations.
type ledger struct {
	mu   sync.Mutex
	sent map[string]bool
}

func newLedger() *ledger { return &ledger{sent: make(map[string]bool)} }

func ledgerKey(payload string, uid uint64) string {
	return payload + "#" + strconv.FormatUint(uid, 10)
}

func (l *ledger) add(payload string, uids []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, uid := range uids {
		l.sent[ledgerKey(payload, uid)] = true
	}
}

func (l *ledger) snapshot() map[string]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]bool, len(l.sent))
	for k := range l.sent {
		out[k] = true
	}
	return out
}

// serveChild is one forked -serve node: its process, the stdin pipe that
// releases it, and the admin client pointed at the address it announced.
type serveChild struct {
	id    graph.ProcessID
	cmd   *exec.Cmd
	stdin *os.File
	admin string
	hc    *cluster.HTTPClient
}

// release closes stdin (the shutdown signal) and reaps the process.
func (c *serveChild) release(wait time.Duration) {
	if c.stdin != nil {
		c.stdin.Close()
		c.stdin = nil
	}
	c.reap(wait)
}

// reap waits for the process to exit, killing it past the deadline.
// Reports whether the child left on its own.
func (c *serveChild) reap(wait time.Duration) bool {
	done := make(chan struct{})
	go func() { c.cmd.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(wait):
		c.cmd.Process.Kill()
		<-done
		return false
	}
}

// spawnServe forks one -serve node and waits for its startup banner.
func spawnServe(self string, id graph.ProcessID, topoPath, peersPath string, cfg config) (*serveChild, error) {
	cmd := exec.Command(self,
		"-serve",
		"-id", strconv.Itoa(int(id)),
		"-topology-file", topoPath,
		"-peers", peersPath,
		"-seed", strconv.FormatInt(cfg.seed, 10),
		"-tick", cfg.tick.String(),
		"-http", "127.0.0.1:0",
	)
	cmd.Stderr = os.Stderr
	stdinR, stdinW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdin = stdinR
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdinR.Close()
		stdinW.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stdinR.Close()
		stdinW.Close()
		return nil, fmt.Errorf("node %d: %v", id, err)
	}
	stdinR.Close() // child holds its copy
	c := &serveChild{id: id, cmd: cmd, stdin: stdinW}

	type banner struct {
		b   serveBanner
		err error
	}
	bc := make(chan banner, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			bc <- banner{err: fmt.Errorf("node %d: exited before announcing itself (%v)", id, sc.Err())}
			return
		}
		var b serveBanner
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			bc <- banner{err: fmt.Errorf("node %d: bad banner: %v", id, err)}
			return
		}
		bc <- banner{b: b}
	}()
	select {
	case b := <-bc:
		if b.err != nil {
			c.release(2 * time.Second)
			return nil, b.err
		}
		c.admin = "http://" + b.b.AdminAddr
		c.hc = cluster.NewHTTPClient(c.admin)
		return c, nil
	case <-time.After(15 * time.Second):
		c.release(2 * time.Second)
		return nil, fmt.Errorf("node %d: no startup banner", id)
	}
}

// awaitDeliveries polls one node's ledger until count messages of the
// given payload landed there, then returns the node's full ledger.
func awaitDeliveries(hc *cluster.HTTPClient, payload string, count int, timeout time.Duration) ([]cluster.DeliveryRec, error) {
	deadline := time.Now().Add(timeout)
	for {
		ds, err := hc.Deliveries()
		if err == nil {
			got := 0
			for _, d := range ds {
				if d.Payload == payload && d.Valid {
					got++
				}
			}
			if got >= count {
				return ds, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("burst %q never fully landed: %v", payload, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// collectDeliveries polls every live node's ledger (plus the cached
// ledger of the drained node) until every sent message is accounted for
// or the timeout passes, and returns per-message delivery counts.
func collectDeliveries(children map[graph.ProcessID]*serveChild, cached []cluster.DeliveryRec,
	sent map[string]bool, timeout time.Duration) (map[string]int, error) {
	ids := make([]graph.ProcessID, 0, len(children))
	for id := range children {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		seen := make(map[string]int, len(sent))
		tally := func(ds []cluster.DeliveryRec) {
			for _, d := range ds {
				if d.Valid {
					seen[ledgerKey(d.Payload, d.UID)]++
				}
			}
		}
		tally(cached)
		lastErr = nil
		for _, id := range ids {
			ds, err := children[id].hc.Deliveries()
			if err != nil {
				lastErr = fmt.Errorf("node %d ledger: %w", id, err)
				continue
			}
			tally(ds)
		}
		outstanding := 0
		for key := range sent {
			if seen[key] == 0 {
				outstanding++
			}
		}
		if outstanding == 0 && lastErr == nil {
			return seen, nil
		}
		if time.Now().After(deadline) {
			if lastErr != nil {
				return seen, lastErr
			}
			return seen, fmt.Errorf("%d messages still undelivered at timeout", outstanding)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
