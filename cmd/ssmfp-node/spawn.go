package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/metrics"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// runSpawn forks -spawn single-node copies of this binary on loopback
// TCP, waits for every node's JSON report, and judges exactly-once
// delivery across the whole cluster. It is the multi-process analogue of
// the in-process UID oracle the simulator tests use.
func runSpawn(cfg config) error {
	g, err := loadTopology(cfg)
	if err != nil {
		return err
	}
	if g.N() != cfg.spawn && cfg.n != 0 && cfg.topoFile == "" {
		return fmt.Errorf("-spawn %d and -n %d disagree", cfg.spawn, cfg.n)
	}
	if _, _, err := chaosOpts(cfg); err != nil {
		return err // reject bad -partition here, not in N children
	}
	legacy := make(map[graph.ProcessID]bool)
	if cfg.legacyNodes != "" {
		for _, part := range strings.Split(cfg.legacyNodes, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= g.N() {
				return fmt.Errorf("-legacy-nodes %q: bad node id %q", cfg.legacyNodes, part)
			}
			legacy[graph.ProcessID(id)] = true
		}
	}

	// Reserve one loopback port per node by binding and closing; the
	// window between close and the child's bind is small, and a stolen
	// port fails the child's listen loudly rather than silently.
	peers := make(map[graph.ProcessID]string, g.N())
	for _, p := range g.Processors() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		peers[p] = l.Addr().String()
		l.Close()
	}

	dir, err := os.MkdirTemp("", "ssmfp-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	topoPath := filepath.Join(dir, "topology.txt")
	if err := os.WriteFile(topoPath, []byte(graph.Format(g)), 0o644); err != nil {
		return err
	}
	peersPath := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(peersPath, []byte(transport.FormatPeers(peers)), 0o644); err != nil {
		return err
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}

	type child struct {
		cmd   *exec.Cmd
		stdin *os.File // closing it releases the node
		rep   chan report
		errc  chan error
	}
	children := make([]*child, 0, g.N())
	defer func() {
		for _, c := range children {
			if c.stdin != nil {
				c.stdin.Close()
			}
		}
		for _, c := range children {
			done := make(chan struct{})
			go func(c *child) { c.cmd.Wait(); close(done) }(c)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
	}()

	for _, p := range g.Processors() {
		// Every child serves its debug mux so the judge can scrape
		// /metrics while the node idles on stdin; -http-base gives stable
		// ports, otherwise each child picks one and reports it.
		httpAddr := "127.0.0.1:0"
		if cfg.httpBase > 0 {
			httpAddr = fmt.Sprintf("127.0.0.1:%d", cfg.httpBase+int(p))
		}
		args := []string{
			"-id", strconv.Itoa(int(p)),
			"-topology-file", topoPath,
			"-peers", peersPath,
			"-messages", strconv.Itoa(cfg.messages),
			"-send-spread", cfg.spread.String(),
			"-rate", strconv.FormatFloat(cfg.rate, 'g', -1, 64),
			"-arrival", cfg.arrival,
			"-seed", strconv.FormatInt(cfg.seed, 10),
			"-tick", cfg.tick.String(),
			"-timeout", cfg.timeout.String(),
			"-loss", strconv.FormatFloat(cfg.loss, 'g', -1, 64),
			"-dup", strconv.FormatFloat(cfg.dup, 'g', -1, 64),
			"-latency", cfg.latency.String(),
			"-jitter", cfg.jitter.String(),
			"-partition", cfg.partitions,
			"-http", httpAddr,
		}
		if cfg.telemetryOut != "" {
			args = append(args,
				"-telemetry-out", fmt.Sprintf("%s.node%d", cfg.telemetryOut, p),
				"-telemetry-every", cfg.telemetryEvery.String())
		}
		if legacy[p] {
			args = append(args, "-legacy-tags")
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdinR, stdinW, err := os.Pipe()
		if err != nil {
			return err
		}
		cmd.Stdin = stdinR
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			stdinR.Close()
			stdinW.Close()
			return err
		}
		if err := cmd.Start(); err != nil {
			stdinR.Close()
			stdinW.Close()
			return fmt.Errorf("node %d: %v", p, err)
		}
		stdinR.Close() // child holds its copy
		c := &child{cmd: cmd, stdin: stdinW, rep: make(chan report, 1), errc: make(chan error, 1)}
		go func(id graph.ProcessID) {
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
			if !sc.Scan() {
				c.errc <- fmt.Errorf("node %d: exited without a report (%v)", id, sc.Err())
				return
			}
			var r report
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				c.errc <- fmt.Errorf("node %d: bad report: %v", id, err)
				return
			}
			c.rep <- r
		}(p)
		children = append(children, c)
	}

	// Children stop waiting after cfg.timeout and report whatever they
	// have; allow slack on top for process startup and JSON plumbing.
	deadline := time.After(cfg.timeout + 15*time.Second)
	reports := make([]report, 0, len(children))
	for i, c := range children {
		select {
		case r := <-c.rep:
			reports = append(reports, r)
		case err := <-c.errc:
			return err
		case <-deadline:
			return fmt.Errorf("node %d: no report before deadline", i)
		}
	}

	violations := judge(g, reports, workload(g, cfg.seed, cfg.messages))
	var merged metrics.LatencyHist
	delivered := 0
	for _, r := range reports {
		delivered += len(r.Delivered)
		if r.Hist != nil {
			merged.Merge(r.Hist)
		}
	}
	// The children are still alive (they idle on stdin until the deferred
	// close), so their /metrics endpoints are scrapeable right now — the
	// telemetry plane is judged like the delivery record.
	health, scrapeViolations := scrapeCluster(reports, &merged)
	violations = append(violations, scrapeViolations...)

	summary := struct {
		Nodes      int      `json:"nodes"`
		Messages   int      `json:"messages"`
		Delivered  int      `json:"delivered"`
		Violations []string `json:"violations"`

		// Rate mode: cluster-wide latency quantiles from the merged
		// per-node histogram shards — the shards are mergeable by
		// construction, so the cluster view is exact, not an average of
		// node quantiles.
		Latency *load.LatencySummary `json:"latency,omitempty"`

		// Health is the stabilization-health verdict over the union of
		// every node's /metrics scrape.
		Health *telemetry.HealthReport `json:"health,omitempty"`

		Reports []report `json:"reports"`
	}{Nodes: len(reports), Messages: cfg.messages, Delivered: delivered,
		Violations: violations, Health: health, Reports: reports}
	if merged.Count() > 0 {
		sum := load.SummarizeHist(&merged)
		summary.Latency = &sum
	}
	enc, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(enc))
	if len(violations) > 0 {
		return fmt.Errorf("%d exactly-once violations", len(violations))
	}
	fmt.Fprintf(os.Stderr, "ssmfp-node: %d nodes, %d messages, exactly-once verified\n",
		len(reports), cfg.messages)
	return nil
}

// scrapeCluster judges the telemetry plane the way judge judges the
// delivery record: every node's /metrics must answer and parse, carry the
// core series, and agree with the peaks the node put in its report; the
// union of all scrapes must pass the stabilization-health checks; and in
// rate mode the node-stamped latency-attribution components must fit
// inside the collector-measured end-to-end latency.
func scrapeCluster(reports []report, merged *metrics.LatencyHist) (*telemetry.HealthReport, []string) {
	var violations []string
	badf := func(format string, a ...any) {
		violations = append(violations, fmt.Sprintf(format, a...))
	}
	client := &http.Client{Timeout: scrapeTimeout}
	var all []telemetry.PromSample
	for _, r := range reports {
		// Report-internal consistency first — the peaks are event-driven,
		// so activity the report claims must have left a high-water mark.
		if n := len(r.Delivered); n > 0 && (r.PeakBufR < 1 || r.PeakBufE < 1) {
			badf("node %d delivered %d messages but reports buffer peaks R=%d E=%d",
				r.ID, n, r.PeakBufR, r.PeakBufE)
		}
		if len(r.Sent) > 0 && r.PeakPending < 1 {
			badf("node %d sent %d messages but reports pending peak 0", r.ID, len(r.Sent))
		}
		if r.ParkEvents > 0 && r.PeakParked < 1 {
			badf("node %d counted %d park events but reports parked peak 0", r.ID, r.ParkEvents)
		}

		if r.MetricsAddr == "" {
			badf("node %d reported no metrics address", r.ID)
			continue
		}
		resp, err := client.Get("http://" + r.MetricsAddr + "/metrics")
		if err != nil {
			badf("node %d: scraping /metrics: %v", r.ID, err)
			continue
		}
		samples, perr := telemetry.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			badf("node %d: /metrics answered HTTP %d", r.ID, resp.StatusCode)
			continue
		}
		if perr != nil {
			badf("node %d: /metrics is not parseable Prometheus text: %v", r.ID, perr)
			continue
		}
		for _, core := range telemetry.CoreSeries {
			if !telemetry.HasSeries(samples, core) {
				badf("node %d: /metrics missing core series %s", r.ID, core)
			}
		}
		all = append(all, samples...)
	}
	if len(all) == 0 {
		return nil, violations
	}
	health := telemetry.CheckHealth(all)
	if !health.Healthy {
		badf("cluster %s", health)
	}

	// Attribution: summed across the cluster, the stamped components
	// (queued + park + deliver) divided by the delivered-message count
	// must not exceed the measured end-to-end mean — the residual is wire
	// time, which is strictly nonnegative. Allow 25% plus scheduling
	// slack for the separate clock reads on either side of a hop.
	if merged.Count() > 0 {
		perMsg := telemetry.SumSeries(all, telemetry.SeriesLatencyComponent+"_sum") / float64(merged.Count())
		if e2e := merged.Mean(); perMsg > e2e*1.25+float64(2*time.Millisecond) {
			badf("latency attribution components sum to %.0fns per message, more than the e2e mean %.0fns",
				perMsg, e2e)
		}
	}
	return &health, violations
}

// judge checks the cross-process exactly-once property: every UID a node
// reports sent must appear exactly once, valid, in the report of the
// destination it was addressed to — and nowhere else.
func judge(g *graph.Graph, reports []report, plan []workloadEntry) []string {
	var violations []string
	badf := func(format string, a ...any) {
		violations = append(violations, fmt.Sprintf(format, a...))
	}

	// Tag-codec coherence: every node must speak the same payload-tag
	// version, and none may have seen a foreign-version tag — a cluster
	// mixing old and new binaries cannot measure latency honestly, so it
	// fails here even when every message arrived exactly once.
	tagVersion := 0
	for _, r := range reports {
		if r.TagMismatches > 0 {
			badf("node %d saw %d deliveries with a foreign tag version", r.ID, r.TagMismatches)
		}
		if r.TagVersion == 0 {
			continue
		}
		if tagVersion == 0 {
			tagVersion = r.TagVersion
		} else if r.TagVersion != tagVersion {
			badf("mixed tag codecs on the cluster: node %d speaks v%d, earlier nodes v%d",
				r.ID, r.TagVersion, tagVersion)
		}
	}

	expectDst := make(map[uint64]int) // uid -> destination
	for _, r := range reports {
		if want := countFor(plan, graph.ProcessID(r.ID)); len(r.Sent) != want.sent {
			badf("node %d sent %d messages, plan says %d", r.ID, len(r.Sent), want.sent)
		}
		for _, s := range r.Sent {
			if _, dup := expectDst[s.UID]; dup {
				badf("uid %d sent twice", s.UID)
			}
			expectDst[s.UID] = s.Dst
		}
	}
	seen := make(map[uint64]int) // uid -> deliveries observed
	for _, r := range reports {
		for _, d := range r.Delivered {
			if !d.Valid {
				badf("node %d delivered invalid uid %d", r.ID, d.UID)
				continue
			}
			dst, known := expectDst[d.UID]
			if !known {
				badf("node %d delivered unknown uid %d", r.ID, d.UID)
				continue
			}
			if dst != r.ID {
				badf("uid %d delivered at node %d, addressed to %d", d.UID, r.ID, dst)
			}
			seen[d.UID]++
		}
	}
	for uid, n := range seen {
		if n > 1 {
			badf("uid %d delivered %d times", uid, n)
		}
	}
	for uid, dst := range expectDst {
		if seen[uid] == 0 {
			badf("uid %d (for node %d) never delivered", uid, dst)
		}
	}
	return violations
}

type planShare struct{ sent, recv int }

func countFor(plan []workloadEntry, p graph.ProcessID) planShare {
	var s planShare
	for _, e := range plan {
		if e.Src == p {
			s.sent++
		}
		if e.Dst == p {
			s.recv++
		}
	}
	return s
}
