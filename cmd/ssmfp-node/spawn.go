package main

import (
	"bufio"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/metrics"
	"ssmfp/internal/secure"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// runSpawn forks -spawn single-node copies of this binary on loopback
// TCP, waits for every node's JSON report, and judges exactly-once
// delivery across the whole cluster. It is the multi-process analogue of
// the in-process UID oracle the simulator tests use.
func runSpawn(cfg config) error {
	g, err := loadTopology(cfg)
	if err != nil {
		return err
	}
	if g.N() != cfg.spawn && cfg.n != 0 && cfg.topoFile == "" {
		return fmt.Errorf("-spawn %d and -n %d disagree", cfg.spawn, cfg.n)
	}
	if _, _, err := chaosOpts(cfg); err != nil {
		return err // reject bad -partition here, not in N children
	}
	legacy := make(map[graph.ProcessID]bool)
	if cfg.legacyNodes != "" {
		for _, part := range strings.Split(cfg.legacyNodes, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= g.N() {
				return fmt.Errorf("-legacy-nodes %q: bad node id %q", cfg.legacyNodes, part)
			}
			legacy[graph.ProcessID(id)] = true
		}
	}

	// Reserve one loopback port per node by binding and closing; the
	// window between close and the child's bind is small, and a stolen
	// port fails the child's listen loudly rather than silently.
	peers := make(map[graph.ProcessID]string, g.N())
	for _, p := range g.Processors() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		peers[p] = l.Addr().String()
		l.Close()
	}

	dir, err := os.MkdirTemp("", "ssmfp-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	topoPath := filepath.Join(dir, "topology.txt")
	if err := os.WriteFile(topoPath, []byte(graph.Format(g)), 0o644); err != nil {
		return err
	}
	peersPath := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(peersPath, []byte(transport.FormatPeers(peers)), 0o644); err != nil {
		return err
	}

	// TLS mode: provision one trust domain for the whole cluster in the
	// temp dir and hand every child its own node credential. The live CA
	// stays in memory — the byzantine rogue needs it to mint observer and
	// alien-node certificates the cluster will trust.
	var (
		certs *certSet
		ca    *secure.CA
	)
	if cfg.requireTLS {
		if ca, certs, err = provisionCerts(filepath.Join(dir, "certs"), g.N()); err != nil {
			return err
		}
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}

	type child struct {
		cmd   *exec.Cmd
		stdin *os.File // closing it releases the node
		rep   chan report
		errc  chan error
	}
	children := make([]*child, 0, g.N())
	defer func() {
		for _, c := range children {
			if c.stdin != nil {
				c.stdin.Close()
			}
		}
		for _, c := range children {
			done := make(chan struct{})
			go func(c *child) { c.cmd.Wait(); close(done) }(c)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
	}()

	for _, p := range g.Processors() {
		// Every child serves its debug mux so the judge can scrape
		// /metrics while the node idles on stdin; -http-base gives stable
		// ports, otherwise each child picks one and reports it.
		httpAddr := "127.0.0.1:0"
		if cfg.httpBase > 0 {
			httpAddr = fmt.Sprintf("127.0.0.1:%d", cfg.httpBase+int(p))
		}
		args := []string{
			"-id", strconv.Itoa(int(p)),
			"-topology-file", topoPath,
			"-peers", peersPath,
			"-messages", strconv.Itoa(cfg.messages),
			"-send-spread", cfg.spread.String(),
			"-rate", strconv.FormatFloat(cfg.rate, 'g', -1, 64),
			"-arrival", cfg.arrival,
			"-seed", strconv.FormatInt(cfg.seed, 10),
			"-tick", cfg.tick.String(),
			"-timeout", cfg.timeout.String(),
			"-loss", strconv.FormatFloat(cfg.loss, 'g', -1, 64),
			"-dup", strconv.FormatFloat(cfg.dup, 'g', -1, 64),
			"-latency", cfg.latency.String(),
			"-jitter", cfg.jitter.String(),
			"-partition", cfg.partitions,
			"-http", httpAddr,
		}
		if cfg.telemetryOut != "" {
			args = append(args,
				"-telemetry-out", fmt.Sprintf("%s.node%d", cfg.telemetryOut, p),
				"-telemetry-every", cfg.telemetryEvery.String())
		}
		if legacy[p] {
			args = append(args, "-legacy-tags")
		}
		if certs != nil {
			args = append(args,
				"-require-tls",
				"-ca", certs.caCert(),
				"-cert", certs.nodeCert(p),
				"-key", certs.nodeKey(p))
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdinR, stdinW, err := os.Pipe()
		if err != nil {
			return err
		}
		cmd.Stdin = stdinR
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			stdinR.Close()
			stdinW.Close()
			return err
		}
		if err := cmd.Start(); err != nil {
			stdinR.Close()
			stdinW.Close()
			return fmt.Errorf("node %d: %v", p, err)
		}
		stdinR.Close() // child holds its copy
		c := &child{cmd: cmd, stdin: stdinW, rep: make(chan report, 1), errc: make(chan error, 1)}
		go func(id graph.ProcessID) {
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
			if !sc.Scan() {
				c.errc <- fmt.Errorf("node %d: exited without a report (%v)", id, sc.Err())
				return
			}
			var r report
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				c.errc <- fmt.Errorf("node %d: bad report: %v", id, err)
				return
			}
			c.rep <- r
		}(p)
		children = append(children, c)
	}

	// Byzantine mode: while the cluster carries its paced workload, a
	// rogue process (this one, wearing bad certificates) strikes every
	// node's wire listener with the full attack surface — untrusted
	// handshakes, role-violating frames, forged senders, replays from a
	// non-member. The ledger records exactly what was injected; the books
	// are balanced against the cluster's rejection counters below.
	var ledger *secure.RogueCounts
	if cfg.byzantine {
		counts, err := strikeCluster(cfg, g, ca, peers)
		if err != nil {
			return fmt.Errorf("byzantine strike: %w", err)
		}
		ledger = &counts
	}

	// Children stop waiting after cfg.timeout and report whatever they
	// have; allow slack on top for process startup and JSON plumbing.
	deadline := time.After(cfg.timeout + 15*time.Second)
	reports := make([]report, 0, len(children))
	for i, c := range children {
		select {
		case r := <-c.rep:
			reports = append(reports, r)
		case err := <-c.errc:
			return err
		case <-deadline:
			return fmt.Errorf("node %d: no report before deadline", i)
		}
	}

	violations := judge(g, reports, workload(g, cfg.seed, cfg.messages))
	var merged metrics.LatencyHist
	delivered := 0
	for _, r := range reports {
		delivered += len(r.Delivered)
		if r.Hist != nil {
			merged.Merge(r.Hist)
		}
	}
	// The children are still alive (they idle on stdin until the deferred
	// close), so their /metrics endpoints are scrapeable right now — the
	// telemetry plane is judged like the delivery record.
	health, scrapeViolations := scrapeCluster(certs, reports, &merged, ledger)
	violations = append(violations, scrapeViolations...)

	summary := struct {
		Nodes      int      `json:"nodes"`
		Messages   int      `json:"messages"`
		Delivered  int      `json:"delivered"`
		Violations []string `json:"violations"`

		// Byzantine mode: the rogue's injection ledger, per category.
		Byzantine *secure.RogueCounts `json:"byzantine,omitempty"`

		// Rate mode: cluster-wide latency quantiles from the merged
		// per-node histogram shards — the shards are mergeable by
		// construction, so the cluster view is exact, not an average of
		// node quantiles.
		Latency *load.LatencySummary `json:"latency,omitempty"`

		// Health is the stabilization-health verdict over the union of
		// every node's /metrics scrape.
		Health *telemetry.HealthReport `json:"health,omitempty"`

		Reports []report `json:"reports"`
	}{Nodes: len(reports), Messages: cfg.messages, Delivered: delivered,
		Violations: violations, Byzantine: ledger, Health: health, Reports: reports}
	if merged.Count() > 0 {
		sum := load.SummarizeHist(&merged)
		summary.Latency = &sum
	}
	enc, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(enc))
	if len(violations) > 0 {
		return fmt.Errorf("%d exactly-once violations", len(violations))
	}
	fmt.Fprintf(os.Stderr, "ssmfp-node: %d nodes, %d messages, exactly-once verified\n",
		len(reports), cfg.messages)
	if ledger != nil {
		fmt.Fprintf(os.Stderr, "ssmfp-node: byzantine books balanced — %d injected frames, every one rejected for the right reason\n",
			ledger.Total())
	}
	return nil
}

// strikeCluster waits until every node's wire listener answers a mutual-
// TLS probe, then drives the rogue's full attack surface against each
// one. The probe uses a fresh operator credential: its handshake
// *succeeds*, so it never pollutes the handshake-rejection counter the
// ledger audit later insists on balancing exactly.
func strikeCluster(cfg config, g *graph.Graph, ca *secure.CA, peers map[graph.ProcessID]string) (secure.RogueCounts, error) {
	probe, err := ca.Issue("spawn-probe", secure.RoleOperator)
	if err != nil {
		return secure.RogueCounts{}, err
	}
	conf := secure.ClientConfig(probe, ca.Pool())
	targets := make([]string, 0, g.N())
	deadline := time.Now().Add(15 * time.Second)
	for _, p := range g.Processors() {
		addr := peers[p]
		for {
			conn, derr := tls.DialWithDialer(&net.Dialer{Timeout: time.Second}, "tcp", addr, conf)
			if derr == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				return secure.RogueCounts{}, fmt.Errorf("node %d never listened on %s: %v", p, addr, derr)
			}
			time.Sleep(50 * time.Millisecond)
		}
		targets = append(targets, addr)
	}
	// The rogue impersonates a real member (node 0) and also holds a
	// valid certificate for a processor the topology has never heard of.
	rogue, err := secure.NewRogue(ca, 0, graph.ProcessID(g.N()+9), targets)
	if err != nil {
		return secure.RogueCounts{}, err
	}
	return rogue.Strike(cfg.burst)
}

// scrapeCluster judges the telemetry plane the way judge judges the
// delivery record: every node's /metrics must answer and parse, carry the
// core series, and agree with the peaks the node put in its report; the
// union of all scrapes must pass the stabilization-health checks; and in
// rate mode the node-stamped latency-attribution components must fit
// inside the collector-measured end-to-end latency.
//
// With certs the children serve /metrics behind mutual TLS, so the judge
// scrapes as an operator. With a byzantine ledger the secure-rejection
// health flag is *expected* — every other flag stays a violation — and
// the cluster's per-reason rejection counters must balance the ledger
// exactly.
func scrapeCluster(certs *certSet, reports []report, merged *metrics.LatencyHist, ledger *secure.RogueCounts) (*telemetry.HealthReport, []string) {
	var violations []string
	badf := func(format string, a ...any) {
		violations = append(violations, fmt.Sprintf(format, a...))
	}
	client := &http.Client{Timeout: scrapeTimeout}
	scheme := "http://"
	if certs != nil {
		cred, err := secure.LoadCredential(certs.roleCert(secure.RoleOperator), certs.roleKey(secure.RoleOperator))
		if err != nil {
			badf("loading the operator scrape credential: %v", err)
			return nil, violations
		}
		pool, err := secure.LoadPool(certs.caCert())
		if err != nil {
			badf("loading the cluster CA: %v", err)
			return nil, violations
		}
		client = &http.Client{
			Timeout:   scrapeTimeout,
			Transport: &http.Transport{TLSClientConfig: secure.ClientConfig(cred, pool)},
		}
		scheme = "https://"
	}
	var all []telemetry.PromSample
	for _, r := range reports {
		// Report-internal consistency first — the peaks are event-driven,
		// so activity the report claims must have left a high-water mark.
		if n := len(r.Delivered); n > 0 && (r.PeakBufR < 1 || r.PeakBufE < 1) {
			badf("node %d delivered %d messages but reports buffer peaks R=%d E=%d",
				r.ID, n, r.PeakBufR, r.PeakBufE)
		}
		if len(r.Sent) > 0 && r.PeakPending < 1 {
			badf("node %d sent %d messages but reports pending peak 0", r.ID, len(r.Sent))
		}
		if r.ParkEvents > 0 && r.PeakParked < 1 {
			badf("node %d counted %d park events but reports parked peak 0", r.ID, r.ParkEvents)
		}

		if r.MetricsAddr == "" {
			badf("node %d reported no metrics address", r.ID)
			continue
		}
		resp, err := client.Get(scheme + r.MetricsAddr + "/metrics")
		if err != nil {
			badf("node %d: scraping /metrics: %v", r.ID, err)
			continue
		}
		samples, perr := telemetry.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			badf("node %d: /metrics answered HTTP %d", r.ID, resp.StatusCode)
			continue
		}
		if perr != nil {
			badf("node %d: /metrics is not parseable Prometheus text: %v", r.ID, perr)
			continue
		}
		for _, core := range telemetry.CoreSeries {
			if !telemetry.HasSeries(samples, core) {
				badf("node %d: /metrics missing core series %s", r.ID, core)
			}
		}
		all = append(all, samples...)
	}
	if len(all) == 0 {
		return nil, violations
	}
	health := telemetry.CheckHealth(all)
	if !health.Healthy {
		if ledger == nil {
			badf("cluster %s", health)
		} else {
			// Under attack the secure-rejection flag is the system working;
			// any other flag is still a violation.
			for _, f := range health.Flags {
				if !f.SecureFlag() {
					badf("cluster flag [%s=%g: %s]", f.Series, f.Value, f.Why)
				}
			}
		}
	}
	if ledger != nil {
		if ledger.Total() > 0 && !flaggedSecure(health) {
			badf("rogue injected %d frames but the cluster counted no secure rejections", ledger.Total())
		}
		violations = append(violations, auditLedger(client, scheme, reports, all, *ledger)...)
	}

	// Attribution: summed across the cluster, the stamped components
	// (queued + park + deliver) divided by the delivered-message count
	// must not exceed the measured end-to-end mean — the residual is wire
	// time, which is strictly nonnegative. Allow 25% plus scheduling
	// slack for the separate clock reads on either side of a hop.
	if merged.Count() > 0 {
		perMsg := telemetry.SumSeries(all, telemetry.SeriesLatencyComponent+"_sum") / float64(merged.Count())
		if e2e := merged.Mean(); perMsg > e2e*1.25+float64(2*time.Millisecond) {
			badf("latency attribution components sum to %.0fns per message, more than the e2e mean %.0fns",
				perMsg, e2e)
		}
	}
	return &health, violations
}

// judge checks the cross-process exactly-once property: every UID a node
// reports sent must appear exactly once, valid, in the report of the
// destination it was addressed to — and nowhere else.
func judge(g *graph.Graph, reports []report, plan []workloadEntry) []string {
	var violations []string
	badf := func(format string, a ...any) {
		violations = append(violations, fmt.Sprintf(format, a...))
	}

	// Tag-codec coherence: every node must speak the same payload-tag
	// version, and none may have seen a foreign-version tag — a cluster
	// mixing old and new binaries cannot measure latency honestly, so it
	// fails here even when every message arrived exactly once.
	tagVersion := 0
	for _, r := range reports {
		if r.TagMismatches > 0 {
			badf("node %d saw %d deliveries with a foreign tag version", r.ID, r.TagMismatches)
		}
		if r.TagVersion == 0 {
			continue
		}
		if tagVersion == 0 {
			tagVersion = r.TagVersion
		} else if r.TagVersion != tagVersion {
			badf("mixed tag codecs on the cluster: node %d speaks v%d, earlier nodes v%d",
				r.ID, r.TagVersion, tagVersion)
		}
	}

	expectDst := make(map[uint64]int) // uid -> destination
	for _, r := range reports {
		if want := countFor(plan, graph.ProcessID(r.ID)); len(r.Sent) != want.sent {
			badf("node %d sent %d messages, plan says %d", r.ID, len(r.Sent), want.sent)
		}
		for _, s := range r.Sent {
			if _, dup := expectDst[s.UID]; dup {
				badf("uid %d sent twice", s.UID)
			}
			expectDst[s.UID] = s.Dst
		}
	}
	seen := make(map[uint64]int) // uid -> deliveries observed
	for _, r := range reports {
		for _, d := range r.Delivered {
			if !d.Valid {
				badf("node %d delivered invalid uid %d", r.ID, d.UID)
				continue
			}
			dst, known := expectDst[d.UID]
			if !known {
				badf("node %d delivered unknown uid %d", r.ID, d.UID)
				continue
			}
			if dst != r.ID {
				badf("uid %d delivered at node %d, addressed to %d", d.UID, r.ID, dst)
			}
			seen[d.UID]++
		}
	}
	for uid, n := range seen {
		if n > 1 {
			badf("uid %d delivered %d times", uid, n)
		}
	}
	for uid, dst := range expectDst {
		if seen[uid] == 0 {
			badf("uid %d (for node %d) never delivered", uid, dst)
		}
	}
	return violations
}

func flaggedSecure(h telemetry.HealthReport) bool {
	for _, f := range h.Flags {
		if f.SecureFlag() {
			return true
		}
	}
	return false
}

// auditLedger balances the byzantine books: every frame the rogue
// injected must appear in exactly the right rejection counter, summed
// across the cluster. The victims count asynchronously to the rogue's
// writes, so the audit re-scrapes until no counter runs short of the
// ledger (bounded), then insists on exact equality — an overshoot means
// the trust domain rejected traffic the rogue never sent, which is just
// as much an accounting failure as a miss.
func auditLedger(client *http.Client, scheme string, reports []report, all []telemetry.PromSample, ledger secure.RogueCounts) []string {
	want := map[string]float64{
		secure.ReasonHandshake:  float64(ledger.Handshake),
		secure.ReasonRole:       float64(ledger.Role),
		secure.ReasonSender:     float64(ledger.Sender),
		secure.ReasonMembership: float64(ledger.Membership),
		secure.ReasonAdmin:      0, // nothing touched the admin plane
	}
	sums := func(samples []telemetry.PromSample) map[string]float64 {
		got := make(map[string]float64, len(want))
		for reason := range want {
			got[reason] = telemetry.SumSeriesLabel(samples, telemetry.SeriesSecureRejected, "reason", reason)
		}
		return got
	}
	got := sums(all)
	deadline := time.Now().Add(10 * time.Second)
	for {
		short := false
		for reason, w := range want {
			if got[reason] < w {
				short = true
			}
		}
		if !short || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
		if fresh, ok := scrapeSamples(client, scheme, reports); ok {
			got = sums(fresh)
		}
	}
	var violations []string
	for _, reason := range secure.Reasons {
		if got[reason] != want[reason] {
			violations = append(violations, fmt.Sprintf(
				"byzantine books don't balance: reason %q counted %g rejections, rogue ledger says %g",
				reason, got[reason], want[reason]))
		}
	}
	return violations
}

// scrapeSamples re-reads every node's /metrics for the audit's settle
// loop; ok is false when any endpoint failed (keep the previous view).
func scrapeSamples(client *http.Client, scheme string, reports []report) ([]telemetry.PromSample, bool) {
	var all []telemetry.PromSample
	for _, r := range reports {
		if r.MetricsAddr == "" {
			return nil, false
		}
		resp, err := client.Get(scheme + r.MetricsAddr + "/metrics")
		if err != nil {
			return nil, false
		}
		samples, perr := telemetry.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if perr != nil {
			return nil, false
		}
		all = append(all, samples...)
	}
	return all, true
}

type planShare struct{ sent, recv int }

func countFor(plan []workloadEntry, p graph.ProcessID) planShare {
	var s planShare
	for _, e := range plan {
		if e.Src == p {
			s.sent++
		}
		if e.Dst == p {
			s.recv++
		}
	}
	return s
}
