package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ssmfp/internal/secure"
	"ssmfp/internal/telemetry"
)

// scrapeTimeout bounds one GET of a node's /metrics endpoint.
const scrapeTimeout = 5 * time.Second

// clientFromFlags builds the HTTP client the operator-side modes
// (-scrape, -admin) talk through, plus the scheme to assume for bare
// host:port targets. With any certificate flag set it loads the full
// identity and speaks mutual TLS; -require-tls alone (no certs) is the
// operator asking for the impossible and fails fast.
func clientFromFlags(cfg config) (*http.Client, string, error) {
	if !tlsConfigured(cfg) {
		return &http.Client{Timeout: scrapeTimeout}, "http://", nil
	}
	cred, pool, err := loadTLSIdentity(cfg)
	if err != nil {
		return nil, "", err
	}
	return &http.Client{
		Timeout:   scrapeTimeout,
		Transport: &http.Transport{TLSClientConfig: secure.ClientConfig(cred, pool)},
	}, "https://", nil
}

// checkTargetScheme enforces the plaintext policy on one explicit target
// URL: -require-tls refuses http:// outright, and an https:// target
// without a trust anchor to verify it against is unusable.
func checkTargetScheme(cfg config, url string) error {
	if cfg.requireTLS && strings.HasPrefix(url, "http://") {
		return fmt.Errorf("-require-tls: refusing plaintext target %s", url)
	}
	if strings.HasPrefix(url, "https://") && cfg.caFile == "" {
		return fmt.Errorf("target %s is TLS but no -ca/-cert/-key were given to speak it", url)
	}
	return nil
}

// nodeScrape is one endpoint's contribution to the cluster view.
type nodeScrape struct {
	Target  string   `json:"target"`
	Series  int      `json:"series"`
	Missing []string `json:"missingCoreSeries,omitempty"`
}

// scrapeSummary is what -scrape prints: one entry per endpoint, the
// cluster-wide aggregates of the headline series, and the stabilization-
// health verdict over the union of every node's samples.
type scrapeSummary struct {
	Nodes  []nodeScrape           `json:"nodes"`
	Totals map[string]float64     `json:"totals"`
	Peaks  map[string]float64     `json:"peaks"`
	Health telemetry.HealthReport `json:"health"`
}

// runScrape aggregates the /metrics endpoints in cfg.scrape into one
// cluster view. Every endpoint must answer and parse; with
// -scrape-validate the core series must all be present on every node and
// the merged health verdict must be clean.
func runScrape(cfg config) error {
	client, scheme, err := clientFromFlags(cfg)
	if err != nil {
		return err
	}
	var all []telemetry.PromSample
	sum := scrapeSummary{
		Totals: make(map[string]float64),
		Peaks:  make(map[string]float64),
	}
	for _, target := range strings.Split(cfg.scrape, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		url := target
		if !strings.Contains(url, "://") {
			url = scheme + url
		}
		if err := checkTargetScheme(cfg, url); err != nil {
			return err
		}
		if !strings.HasSuffix(url, "/metrics") {
			url = strings.TrimSuffix(url, "/") + "/metrics"
		}
		resp, err := client.Get(url)
		if err != nil {
			return fmt.Errorf("scrape %s: %w", target, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("scrape %s: HTTP %d", target, resp.StatusCode)
		}
		samples, err := telemetry.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("scrape %s: %w", target, err)
		}
		ns := nodeScrape{Target: target, Series: len(samples)}
		for _, core := range telemetry.CoreSeries {
			if !telemetry.HasSeries(samples, core) {
				ns.Missing = append(ns.Missing, core)
			}
		}
		sum.Nodes = append(sum.Nodes, ns)
		all = append(all, samples...)
	}
	if len(sum.Nodes) == 0 {
		return fmt.Errorf("-scrape: no targets")
	}

	// Counters sum across the cluster; occupancy peaks take the maximum.
	for _, name := range []string{
		telemetry.SeriesSends, telemetry.SeriesDeliveries,
		telemetry.SeriesFramesSent, telemetry.SeriesWireFramesSent,
		telemetry.SeriesWireBytesSent, telemetry.SeriesParkEvents,
		telemetry.SeriesRetransmits,
	} {
		sum.Totals[name] = telemetry.SumSeries(all, name)
	}
	for _, name := range []string{
		telemetry.SeriesBufOccupancy + "_peak",
		telemetry.SeriesPending + "_peak",
		telemetry.SeriesParked + "_peak",
	} {
		sum.Peaks[name] = telemetry.MaxSeries(all, name)
	}
	sum.Health = telemetry.CheckHealth(all)

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))

	if cfg.scrapeValidate {
		for _, ns := range sum.Nodes {
			if len(ns.Missing) > 0 {
				return fmt.Errorf("%s is missing core series: %s", ns.Target, strings.Join(ns.Missing, ", "))
			}
		}
		if !sum.Health.Healthy {
			return fmt.Errorf("cluster unhealthy: %s", sum.Health)
		}
		fmt.Fprintf(os.Stderr, "ssmfp-node: %d endpoints scraped, core series present, %s\n",
			len(sum.Nodes), sum.Health)
	}
	return nil
}
