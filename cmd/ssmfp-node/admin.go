package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ssmfp/internal/cluster"
	"ssmfp/internal/graph"
)

// runAdmin is the operator CLI: one subcommand (-admin <op>) against a
// running elastic cluster. Single-node probes (status, quiesce, inject,
// epoch) talk to one admin endpoint via -target; cluster operations
// (drain, add-link, cut-link, and cluster-wide status/inject) need the
// full address book via -targets and reconstruct an operator console —
// a cluster.Manager resumed at the cluster's current epoch — from the
// first node's status before sequencing the operation.
func runAdmin(cfg config) error {
	switch cfg.admin {
	case "status":
		return adminStatus(cfg)
	case "quiesce":
		return adminQuiesce(cfg)
	case "inject":
		return adminInject(cfg)
	case "drain":
		return adminDrain(cfg)
	case "add-link", "cut-link":
		return adminLink(cfg)
	case "epoch":
		return adminEpoch(cfg)
	default:
		return fmt.Errorf("unknown -admin %q (want status, quiesce, inject, drain, add-link, cut-link or epoch)", cfg.admin)
	}
}

// printJSON writes one indented JSON document to stdout — the admin
// CLI's only output form.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// parseTargets parses the -targets address book: "id=url,id=url".
func parseTargets(s string) (map[graph.ProcessID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("this op needs -targets \"id=url,id=url\"")
	}
	out := make(map[graph.ProcessID]string)
	for _, ent := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(ent), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return nil, fmt.Errorf("-targets entry %q: want id=url", ent)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("-targets entry %q: %v", ent, err)
		}
		out[graph.ProcessID(id)] = kv[1]
	}
	return out, nil
}

// adminClient builds the node client for one admin URL, speaking mutual
// TLS when the certificate flags are set and refusing plaintext targets
// under -require-tls.
func adminClient(cfg config, url string) (*cluster.HTTPClient, error) {
	hc, _, err := clientFromFlags(cfg)
	if err != nil {
		return nil, err
	}
	if err := checkTargetScheme(cfg, url); err != nil {
		return nil, err
	}
	return cluster.NewHTTPClientWith(url, hc), nil
}

// targetClient resolves the single-node client for -target (falling back
// to the lowest-id entry of -targets, so "status against the cluster I
// already listed" needs no extra flag).
func targetClient(cfg config) (*cluster.HTTPClient, error) {
	if cfg.target != "" {
		return adminClient(cfg, cfg.target)
	}
	targets, err := parseTargets(cfg.targets)
	if err != nil {
		return nil, fmt.Errorf("this op needs -target (or -targets)")
	}
	ids := sortedIDs(targets)
	return adminClient(cfg, targets[ids[0]])
}

func sortedIDs(targets map[graph.ProcessID]string) []graph.ProcessID {
	ids := make([]graph.ProcessID, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// topoFrom rebuilds an operator topology from a node's reported slot
// count and edge set — the same construction Epoch.Build performs, but
// keeping the mutable Topology instead of freezing it.
func topoFrom(slots int, edges [][2]graph.ProcessID) (*graph.Topology, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("reported slot count %d", slots)
	}
	onEdge := make([]bool, slots)
	for _, ed := range edges {
		for _, p := range ed {
			if int(p) < 0 || int(p) >= slots {
				return nil, fmt.Errorf("reported edge (%d,%d) outside %d slots", ed[0], ed[1], slots)
			}
			onEdge[p] = true
		}
	}
	topo := graph.NewTopology(graph.New(slots))
	if slots > 1 {
		for p, on := range onEdge {
			if !on {
				if err := topo.RemoveNode(graph.ProcessID(p)); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, ed := range edges {
		if err := topo.AddEdge(ed[0], ed[1]); err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// console reconstructs the operator console for a running cluster: ask
// the first answering node for its status, rebuild the topology it
// reports, resume the epoch sequence there, and attach an HTTP client
// for every listed node.
func console(cfg config, targets map[graph.ProcessID]string) (*cluster.Manager, error) {
	var lastErr error
	for _, id := range sortedIDs(targets) {
		hc, err := adminClient(cfg, targets[id])
		if err != nil {
			return nil, err
		}
		st, err := hc.Status()
		if err != nil {
			lastErr = fmt.Errorf("node %d (%s): %w", id, targets[id], err)
			continue
		}
		topo, err := topoFrom(st.Slots, st.Edges)
		if err != nil {
			return nil, fmt.Errorf("node %d reported an unusable topology: %w", id, err)
		}
		mgr := cluster.NewManager(topo)
		mgr.ResumeAt(st.Epoch)
		for nid, url := range targets {
			nhc, err := adminClient(cfg, url)
			if err != nil {
				return nil, err
			}
			mgr.Attach(nid, nhc, "")
		}
		return mgr, nil
	}
	return nil, fmt.Errorf("no node answered a status probe: %w", lastErr)
}

func adminStatus(cfg config) error {
	if cfg.targets != "" {
		targets, err := parseTargets(cfg.targets)
		if err != nil {
			return err
		}
		mgr, err := console(cfg, targets)
		if err != nil {
			return err
		}
		return printJSON(mgr.Status())
	}
	hc, err := targetClient(cfg)
	if err != nil {
		return err
	}
	st, err := hc.Status()
	if err != nil {
		return err
	}
	return printJSON(st)
}

func adminQuiesce(cfg config) error {
	if cfg.proc < 0 {
		return fmt.Errorf("-admin quiesce needs -proc")
	}
	hc, err := targetClient(cfg)
	if err != nil {
		return err
	}
	rep, err := hc.Quiesce(graph.ProcessID(cfg.proc))
	if err != nil {
		return err
	}
	return printJSON(rep)
}

func adminInject(cfg config) error {
	if cfg.from < 0 || cfg.to < 0 {
		return fmt.Errorf("-admin inject needs -from and -to")
	}
	src, dst := graph.ProcessID(cfg.from), graph.ProcessID(cfg.to)
	if cfg.targets != "" {
		targets, err := parseTargets(cfg.targets)
		if err != nil {
			return err
		}
		mgr, err := console(cfg, targets)
		if err != nil {
			return err
		}
		rep, err := mgr.Inject(src, dst, cfg.count, cfg.payload)
		if err != nil {
			return err
		}
		return printJSON(rep)
	}
	hc, err := targetClient(cfg)
	if err != nil {
		return err
	}
	rep, err := hc.Inject(src, dst, cfg.count, cfg.payload)
	if err != nil {
		return err
	}
	return printJSON(rep)
}

func adminDrain(cfg config) error {
	if cfg.proc < 0 {
		return fmt.Errorf("-admin drain needs -proc")
	}
	targets, err := parseTargets(cfg.targets)
	if err != nil {
		return err
	}
	mgr, err := console(cfg, targets)
	if err != nil {
		return err
	}
	healed, err := mgr.Drain(graph.ProcessID(cfg.proc))
	if err != nil {
		return err
	}
	return printJSON(struct {
		Drained int                  `json:"drained"`
		Healed  [][2]graph.ProcessID `json:"healed"`
		Epoch   uint64               `json:"epoch"`
	}{cfg.proc, healed, mgr.Epoch().Seq})
}

func adminLink(cfg config) error {
	if cfg.linkU < 0 || cfg.linkV < 0 {
		return fmt.Errorf("-admin %s needs -u and -v", cfg.admin)
	}
	targets, err := parseTargets(cfg.targets)
	if err != nil {
		return err
	}
	mgr, err := console(cfg, targets)
	if err != nil {
		return err
	}
	u, v := graph.ProcessID(cfg.linkU), graph.ProcessID(cfg.linkV)
	if cfg.admin == "add-link" {
		err = mgr.AddLink(u, v)
	} else {
		err = mgr.CutLink(u, v)
	}
	if err != nil {
		return err
	}
	return printJSON(struct {
		Op    string `json:"op"`
		U     int    `json:"u"`
		V     int    `json:"v"`
		Epoch uint64 `json:"epoch"`
	}{cfg.admin, cfg.linkU, cfg.linkV, mgr.Epoch().Seq})
}

func adminEpoch(cfg config) error {
	if cfg.epochFile == "" {
		return fmt.Errorf("-admin epoch needs -epoch-file")
	}
	raw, err := os.ReadFile(cfg.epochFile)
	if err != nil {
		return err
	}
	var e cluster.Epoch
	if err := json.Unmarshal(raw, &e); err != nil {
		return fmt.Errorf("-epoch-file %s: %w", cfg.epochFile, err)
	}
	hc, err := targetClient(cfg)
	if err != nil {
		return err
	}
	if err := hc.Apply(e); err != nil {
		return err
	}
	return printJSON(struct {
		Applied uint64 `json:"applied"`
	}{e.Seq})
}
