package main

import (
	"strings"
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
	"ssmfp/internal/telemetry"
)

// metricsEndpoint serves a live msgpass network's registry on loopback
// and returns its address — a stand-in for one cluster node's debug mux.
func metricsEndpoint(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	srv, err := obs.ServeWith("127.0.0.1:0", nil, telemetry.Handler(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// TestScrapeModeValidates drives -scrape -scrape-validate against two
// real registries: a healthy cluster passes, and planting a watermark
// violation on one node fails the health verdict.
func TestScrapeModeValidates(t *testing.T) {
	regs := make([]*telemetry.Registry, 2)
	var addrs []string
	for i := range regs {
		regs[i] = telemetry.New()
		nw := msgpass.New(graph.Line(2), msgpass.Options{Seed: int64(i + 1), Telemetry: regs[i]})
		nw.Start()
		t.Cleanup(nw.Stop)
		if _, err := nw.Send(0, "scrape", 1); err != nil {
			t.Fatal(err)
		}
		if !nw.WaitDelivered(1, 10e9) {
			t.Fatal("not delivered")
		}
		addrs = append(addrs, metricsEndpoint(t, regs[i]))
	}

	cfg := config{scrape: strings.Join(addrs, ","), scrapeValidate: true}
	if err := run(cfg); err != nil {
		t.Fatalf("healthy cluster failed scrape validation: %v", err)
	}

	// A watermark violation on one node must flip the cluster verdict.
	regs[1].Counter(telemetry.SeriesWatermarkViolations, "planted").Inc()
	err := run(cfg)
	if err == nil {
		t.Fatal("unhealthy cluster passed -scrape-validate")
	}
	if !strings.Contains(err.Error(), "watermark") {
		t.Fatalf("failed for the wrong reason: %v", err)
	}
}

// TestScrapeRejectsUnparseable: an endpoint that is not Prometheus text
// is an error, not a silent skip.
func TestScrapeRejectsUnparseable(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", func() any { return "not metrics" })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// /debug/ssmfp serves JSON; pointing -scrape at it must fail to parse.
	cfg := config{scrape: srv.Addr() + "/debug/ssmfp"}
	if err := run(cfg); err == nil {
		t.Fatal("non-Prometheus endpoint accepted")
	}
}
