package main

import (
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ssmfp/internal/cluster"
	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
	"ssmfp/internal/secure"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// nodeRuntime is one booted processor: the wire, the protocol instance,
// its telemetry registry, and the cluster agent that administers it.
// Shared by the workload mode (runNode) and the persistent service mode
// (runServe).
type nodeRuntime struct {
	g     *graph.Graph
	local graph.ProcessID
	tr    transport.Transport
	reg   *telemetry.Registry
	nw    *msgpass.Network
	agent *cluster.Agent

	// Secure mode: the mutual-TLS transport plus the credential and CA
	// pool the debug/admin server reuses. All nil in plaintext mode.
	sec  *secure.TLS
	cred *secure.Credential
	pool *x509.CertPool
}

// tlsConfigured reports whether any of the certificate flags is set —
// partial configuration is an error loadTLSIdentity names precisely.
func tlsConfigured(cfg config) bool {
	return cfg.caFile != "" || cfg.certFile != "" || cfg.keyFile != "" || cfg.requireTLS
}

// loadTLSIdentity loads this process's credential and the cluster CA
// from the certificate flags, insisting on all three.
func loadTLSIdentity(cfg config) (*secure.Credential, *x509.CertPool, error) {
	if cfg.caFile == "" || cfg.certFile == "" || cfg.keyFile == "" {
		return nil, nil, fmt.Errorf("TLS needs all of -ca, -cert and -key (have ca=%q cert=%q key=%q)",
			cfg.caFile, cfg.certFile, cfg.keyFile)
	}
	cred, err := secure.LoadCredential(cfg.certFile, cfg.keyFile)
	if err != nil {
		return nil, nil, fmt.Errorf("-cert/-key: %w", err)
	}
	pool, err := secure.LoadPool(cfg.caFile)
	if err != nil {
		return nil, nil, fmt.Errorf("-ca %s: %w", cfg.caFile, err)
	}
	return cred, pool, nil
}

func (rt *nodeRuntime) close() {
	rt.nw.Stop()
	rt.tr.Close()
}

// bootNode opens the TCP wire and starts the protocol for -id. It fails
// fast — naming the missing processor — when the -peers file does not
// cover this node or every neighbor the topology gives it: a node that
// cannot reach a neighbor would otherwise limp along retransmitting into
// the void until the run times out.
func bootNode(cfg config) (*nodeRuntime, error) {
	if cfg.id < 0 {
		return nil, fmt.Errorf("node mode needs -id (or use -spawn)")
	}
	if cfg.peers == "" {
		return nil, fmt.Errorf("node mode needs -peers")
	}
	g, err := loadTopology(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.id >= g.N() {
		return nil, fmt.Errorf("-id %d out of range for %d processors", cfg.id, g.N())
	}
	pf, err := os.Open(cfg.peers)
	if err != nil {
		return nil, err
	}
	peers, err := transport.ParsePeers(pf)
	pf.Close()
	if err != nil {
		return nil, err
	}
	local := graph.ProcessID(cfg.id)
	if _, ok := peers[local]; !ok {
		return nil, fmt.Errorf("-peers %s: no listen address for -id %d", cfg.peers, cfg.id)
	}
	for _, q := range g.Neighbors(local) {
		if _, ok := peers[q]; !ok {
			return nil, fmt.Errorf("-peers %s: no address for processor %d, a neighbor of -id %d in the topology",
				cfg.peers, q, cfg.id)
		}
	}

	// The registry exists before the wire so the secure transport's
	// rejection counters land in this node's scrape, not a private one.
	reg := telemetry.New()
	rt := &nodeRuntime{g: g, local: local, reg: reg}
	var (
		tr   transport.Transport
		book cluster.PeerBook
	)
	if tlsConfigured(cfg) {
		cred, pool, err := loadTLSIdentity(cfg)
		if err != nil {
			return nil, err
		}
		sec, err := secure.NewTLS(g, secure.TLSOptions{
			Local:     local,
			Peers:     peers,
			Cred:      cred,
			Pool:      pool,
			Telemetry: reg,
			Seed:      cfg.seed + int64(cfg.id), // jitter streams differ per process
		})
		if err != nil {
			return nil, err
		}
		tr, book = sec, sec
		rt.sec, rt.cred, rt.pool = sec, cred, pool
	} else {
		tcp, err := transport.NewTCP(g, transport.TCPOptions{
			Local: local,
			Peers: peers,
			Seed:  cfg.seed + int64(cfg.id),
		})
		if err != nil {
			return nil, err
		}
		tr, book = tcp, tcp
	}
	copts, impaired, err := chaosOpts(cfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	if impaired {
		tr = transport.NewChaos(tr, copts)
	}
	nw := msgpass.New(g, msgpass.Options{
		Tick:      cfg.tick,
		Seed:      cfg.seed,
		Transport: tr,
		Procs:     []graph.ProcessID{local},
		Telemetry: reg,
		// Nodes stamp R1-queue and park waits into v3 payload tags so any
		// collector downstream can attribute end-to-end latency; foreign
		// payloads (legacy tags, plain text) pass through untouched.
		HoldStamp: load.AddHold,
	})
	nw.Start()
	// The agent feeds epoch address books into the wire's peer table, so
	// links to processors that join after boot can be dialed.
	rt.tr, rt.nw, rt.agent = tr, nw, cluster.NewAgent(nw, book)
	return rt, nil
}

// serveDebug starts the introspection endpoint with the admin surface
// mounted; nil when -http is unset. A TLS node serves it over mutual TLS
// against the same trust domain as the wire — any CA-signed role cert
// may scrape /metrics, but /admin/ sits behind the certificate-role
// guard: observers read, operators mutate, nodes get nothing.
func serveDebug(cfg config, rt *nodeRuntime) (*obs.Server, error) {
	if cfg.httpAddr == "" {
		return nil, nil
	}
	snapshot := func() any {
		return struct {
			ID     int                  `json:"id"`
			Epoch  uint64               `json:"epoch"`
			Stats  msgpass.Stats        `json:"stats"`
			Queues []msgpass.QueueDepth `json:"queues"`
		}{cfg.id, rt.nw.CurrentEpoch(), rt.nw.Stats(), rt.nw.QueueDepths()}
	}
	var (
		srv *obs.Server
		err error
	)
	if rt.sec != nil {
		srv, err = obs.ServeTLSWith(cfg.httpAddr, secure.ServerConfig(rt.cred, rt.pool),
			snapshot, telemetry.Handler(rt.reg),
			obs.Route{Pattern: "/admin/", Handler: secure.AdminGuard(rt.agent.Handler(), rt.reg)})
	} else {
		srv, err = obs.ServeWith(cfg.httpAddr, snapshot, telemetry.Handler(rt.reg),
			obs.Route{Pattern: "/admin/", Handler: rt.agent.Handler()})
	}
	if err != nil {
		return nil, fmt.Errorf("-http %s: %w", cfg.httpAddr, err)
	}
	return srv, nil
}

// startEmitter wires -telemetry-out; the returned closer is a no-op when
// the flag is unset.
func startEmitter(cfg config, reg *telemetry.Registry) (func(), error) {
	if cfg.telemetryOut == "" {
		return func() {}, nil
	}
	f, err := os.OpenFile(cfg.telemetryOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	em := telemetry.NewEmitter(reg, fmt.Sprintf("node%d", cfg.id), f, nil, cfg.telemetryEvery)
	em.Start()
	return func() { em.Close(); f.Close() }, nil
}

// serveBanner is the one JSON line a -serve node prints at startup: its
// identity and where its admin/debug endpoint listens. Operator tooling
// (and the -elastic judge) reads it to find the node.
type serveBanner struct {
	ID        int    `json:"id"`
	AdminAddr string `json:"adminAddr"`
	Epoch     uint64 `json:"epoch"`
}

// runServe runs one processor as a long-lived cluster member: no
// workload, no report — the node boots, serves the admin API on its
// debug mux, and reconfigures as epochs arrive. It exits when its
// processor is drained out of the cluster (an epoch without it detaches
// the local node) or when stdin reaches EOF (the operator's shutdown
// signal, same convention as the workload mode).
func runServe(cfg config) error {
	if cfg.httpAddr == "" {
		return fmt.Errorf("-serve needs -http (the admin API has to listen somewhere)")
	}
	rt, err := bootNode(cfg)
	if err != nil {
		return err
	}
	defer rt.close()
	srv, err := serveDebug(cfg, rt)
	if err != nil {
		return err
	}
	defer srv.Close()
	stopEmit, err := startEmitter(cfg, rt.reg)
	if err != nil {
		return err
	}
	defer stopEmit()

	banner, err := json.Marshal(serveBanner{ID: cfg.id, AdminAddr: srv.Addr(), Epoch: rt.nw.CurrentEpoch()})
	if err != nil {
		return err
	}
	fmt.Println(string(banner))

	stdinDone := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin)
		close(stdinDone)
	}()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stdinDone:
			return nil
		case <-tick.C:
			// Drained out: some epoch removed the local processor. Linger
			// briefly so late admin probes (the operator's final status
			// sweep) still answer, then leave.
			if rt.nw.CurrentEpoch() > 0 && len(rt.nw.QueueDepths()) == 0 {
				time.Sleep(200 * time.Millisecond)
				return nil
			}
		}
	}
}
