// Command ssmfp-node runs one processor of a message-passing SSMFP
// deployment over real TCP. Every participating OS process is given the
// same topology, the same peer address map, and the same workload seed;
// each one runs exactly one processor (-id) and the union of processes
// forms the network. Because the workload is derived deterministically
// from (seed, topology), every process can compute the full global send
// plan, execute its own share, and know exactly how many deliveries to
// expect — so each process emits a single JSON report line on stdout and
// an external judge (the -spawn launcher, or a human with jq) can check
// exactly-once delivery across the whole cluster.
//
// Single-node usage:
//
//	ssmfp-node -id 2 -topology ring -n 5 -peers peers.txt \
//	    -messages 30 -seed 7 -loss 0.1 -dup 0.1 -jitter 1ms
//
// The process prints its report once its expected deliveries arrived (or
// -timeout elapsed), then keeps forwarding for the other nodes until its
// stdin reaches EOF — the launcher holds a pipe open and closes it when
// every report is in.
//
// Launcher usage (forks N copies of itself on loopback and judges them):
//
//	ssmfp-node -spawn 5 -topology ring -messages 30 -seed 7 \
//	    -loss 0.10 -dup 0.10 -latency 200us -jitter 1ms \
//	    -partition 400ms:600ms:0-1 -timeout 60s
//
// Exit status is 0 iff every valid message was delivered exactly once at
// its destination.
//
// With -rate R the cluster paces the workload at R messages/second on a
// schedule every process derives from the seed, tags payloads with their
// scheduled instants, and reports per-node latency quantiles plus a
// mergeable histogram shard; the launcher merges the shards into
// cluster-wide quantiles. Per-node achieved send/deliver rates are
// reported in every mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/metrics"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

type config struct {
	id       int
	spawn    int
	topology string
	n        int
	topoFile string
	peers    string
	messages int
	spread   time.Duration
	rate     float64
	arrival  string
	seed     int64
	tick     time.Duration
	timeout  time.Duration

	loss       float64
	dup        float64
	latency    time.Duration
	jitter     time.Duration
	partitions string

	legacyTags  bool
	legacyNodes string

	httpAddr       string
	httpBase       int
	telemetryOut   string
	telemetryEvery time.Duration
	scrape         string
	scrapeValidate bool

	// Elastic-cluster operator plane (see internal/cluster).
	serve     bool
	elastic   bool
	admin     string
	target    string
	targets   string
	proc      int
	from      int
	to        int
	count     int
	linkU     int
	linkV     int
	payload   string
	epochFile string

	// Secure transport: mutual-TLS links and certificate-carried roles
	// (see internal/secure).
	caFile     string
	certFile   string
	keyFile    string
	requireTLS bool
	genCerts   bool
	certsDir   string
	byzantine  bool
	burst      int
}

func main() {
	var cfg config
	flag.IntVar(&cfg.id, "id", -1, "processor ID this process runs (single-node mode)")
	flag.IntVar(&cfg.spawn, "spawn", 0, "fork this many single-node copies on loopback and judge them")
	flag.StringVar(&cfg.topology, "topology", "ring", "named topology: ring, line, star, complete")
	flag.IntVar(&cfg.n, "n", 0, "processor count for -topology (defaults to -spawn, else required)")
	flag.StringVar(&cfg.topoFile, "topology-file", "", "topology file (overrides -topology/-n; see internal/graph.Parse)")
	flag.StringVar(&cfg.peers, "peers", "", "peer address file: one \"<id> <host:port>\" per line")
	flag.IntVar(&cfg.messages, "messages", 20, "total messages in the cluster-wide workload")
	flag.DurationVar(&cfg.spread, "send-spread", 0, "inject the workload uniformly over this window instead of all at once (lets sends straddle -partition cuts)")
	flag.Float64Var(&cfg.rate, "rate", 0, "pace the workload at this cluster-wide offered rate in messages/second, tagging payloads for latency measurement (0 = burst mode)")
	flag.StringVar(&cfg.arrival, "arrival", "poisson", "arrival process for -rate: poisson or constant")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for workload, chaos and protocol randomness")
	flag.DurationVar(&cfg.tick, "tick", 2*time.Millisecond, "node timer period (gossip + retransmission)")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "give up waiting for deliveries after this long")
	flag.Float64Var(&cfg.loss, "loss", 0, "chaos: drop each frame with this probability")
	flag.Float64Var(&cfg.dup, "dup", 0, "chaos: duplicate each frame with this probability")
	flag.DurationVar(&cfg.latency, "latency", 0, "chaos: base one-way frame delay")
	flag.DurationVar(&cfg.jitter, "jitter", 0, "chaos: extra uniform per-frame delay (reorders the wire)")
	flag.StringVar(&cfg.partitions, "partition", "", "chaos: partition windows \"start:dur:u-v[;u-v]\" (comma-separated)")
	flag.BoolVar(&cfg.legacyTags, "legacy-tags", false, "emit v1 payload tags in -rate mode (simulates a pre-v2 binary; cross-version tests only)")
	flag.StringVar(&cfg.legacyNodes, "legacy-nodes", "", "spawn mode: comma-separated node IDs forked with -legacy-tags (cross-version tests only)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve the debug mux (/metrics, /debug/ssmfp, /debug/pprof) on this address; 127.0.0.1:0 picks a port, reported as metricsAddr")
	flag.IntVar(&cfg.httpBase, "http-base", 0, "spawn mode: child i serves its debug mux on 127.0.0.1:(base+i); 0 gives every child an ephemeral port")
	flag.StringVar(&cfg.telemetryOut, "telemetry-out", "", "append ssmfp-telemetry/v1 JSONL snapshots to this file (spawn mode: one file per child, suffixed .node<i>)")
	flag.DurationVar(&cfg.telemetryEvery, "telemetry-every", time.Second, "snapshot period for -telemetry-out")
	flag.StringVar(&cfg.scrape, "scrape", "", "scrape mode: comma-separated /metrics endpoints to aggregate into a cluster view (no node is run)")
	flag.BoolVar(&cfg.scrapeValidate, "scrape-validate", false, "scrape mode: exit nonzero unless every endpoint parses, carries the core series, and the cluster passes the stabilization-health checks")
	flag.BoolVar(&cfg.serve, "serve", false, "run as a long-lived cluster member: no workload, admin API on -http, reconfigure via epochs until drained out or stdin EOF")
	flag.BoolVar(&cfg.elastic, "elastic", false, "churn judge: fork a -spawn-sized serve cluster, join two nodes, cut a link and drain one under live load, verify exactly-once")
	flag.StringVar(&cfg.admin, "admin", "", "operator op against a running cluster: status, inject, quiesce, drain, add-link, cut-link, epoch (needs -target or -targets)")
	flag.StringVar(&cfg.target, "target", "", "admin mode: one node's admin base URL, e.g. http://127.0.0.1:8080")
	flag.StringVar(&cfg.targets, "targets", "", "admin mode: cluster address book \"id=url,id=url\" (required for drain/add-link/cut-link)")
	flag.IntVar(&cfg.proc, "proc", -1, "admin mode: processor operand for drain/quiesce")
	flag.IntVar(&cfg.from, "from", -1, "admin inject: source processor")
	flag.IntVar(&cfg.to, "to", -1, "admin inject: destination processor")
	flag.IntVar(&cfg.count, "count", 1, "admin inject: number of messages")
	flag.IntVar(&cfg.linkU, "u", -1, "admin add-link/cut-link: one endpoint")
	flag.IntVar(&cfg.linkV, "v", -1, "admin add-link/cut-link: other endpoint")
	flag.StringVar(&cfg.payload, "payload", "inject", "admin inject: message payload")
	flag.StringVar(&cfg.epochFile, "epoch-file", "", "admin epoch: JSON Epoch file to POST at -target")
	flag.StringVar(&cfg.caFile, "ca", "", "cluster CA certificate PEM; with -cert/-key the node speaks mutual TLS on every link and the admin plane enforces certificate roles")
	flag.StringVar(&cfg.certFile, "cert", "", "this process's certificate PEM: a node-<id> role cert in node mode, an operator/observer cert in -admin and -scrape modes")
	flag.StringVar(&cfg.keyFile, "key", "", "private key PEM for -cert")
	flag.BoolVar(&cfg.requireTLS, "require-tls", false, "refuse plaintext: nodes fail to boot without -ca/-cert/-key, client modes refuse http:// targets; spawn mode provisions a CA and per-node credentials for the whole cluster")
	flag.BoolVar(&cfg.genCerts, "gen-certs", false, "mint a cluster CA plus node-0..n-1, operator and observer credentials into -certs-dir and exit (needs -n)")
	flag.StringVar(&cfg.certsDir, "certs-dir", "ssmfp-certs", "directory -gen-certs writes the trust domain into")
	flag.BoolVar(&cfg.byzantine, "byzantine", false, "byzantine judge: fork a mutual-TLS -spawn cluster under -rate load, strike it with forged, replayed and role-violating frames from rogue certificates, and verify exactly-once plus per-reason rejection accounting")
	flag.IntVar(&cfg.burst, "burst", 5, "byzantine mode: frames injected per attack category per node")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ssmfp-node: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.genCerts {
		return runGenCerts(cfg)
	}
	if cfg.scrape != "" {
		return runScrape(cfg)
	}
	if cfg.admin != "" {
		return runAdmin(cfg)
	}
	if cfg.elastic {
		return runElastic(cfg)
	}
	if cfg.byzantine {
		// The byzantine judge is the TLS spawn judge plus a rogue: it only
		// means anything with certificates on every link and sustained load
		// for the attack to hide under.
		cfg.requireTLS = true
		if cfg.spawn == 0 {
			return fmt.Errorf("-byzantine needs -spawn (how many nodes to attack)")
		}
		if cfg.rate == 0 {
			cfg.rate = 150
		}
		return runSpawn(cfg)
	}
	if cfg.spawn > 0 {
		return runSpawn(cfg)
	}
	if cfg.serve {
		return runServe(cfg)
	}
	return runNode(cfg)
}

// loadTopology builds the deployment graph from -topology-file or the
// named -topology/-n pair.
func loadTopology(cfg config) (*graph.Graph, error) {
	if cfg.topoFile != "" {
		f, err := os.Open(cfg.topoFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Parse(f)
	}
	n := cfg.n
	if n == 0 {
		n = cfg.spawn
	}
	if n < 2 {
		return nil, fmt.Errorf("need -n >= 2 (or -topology-file)")
	}
	switch cfg.topology {
	case "ring":
		return graph.Ring(n), nil
	case "line":
		return graph.Line(n), nil
	case "star":
		return graph.Star(n), nil
	case "complete":
		return graph.Complete(n), nil
	default:
		return nil, fmt.Errorf("unknown -topology %q (want ring, line, star or complete)", cfg.topology)
	}
}

// workloadEntry is one cluster-wide send: processor Src sends to Dst.
type workloadEntry struct {
	Src, Dst graph.ProcessID
}

// workload derives the global send plan from (seed, topology). Every
// process computes the identical list, so each knows both its own share
// (entries with Src == local id) and how many deliveries to expect
// (entries with Dst == local id) without any coordination.
func workload(g *graph.Graph, seed int64, messages int) []workloadEntry {
	rng := rand.New(rand.NewSource(seed ^ 0x5553464d)) // distinct stream from protocol randomness
	out := make([]workloadEntry, 0, messages)
	n := g.N()
	for i := 0; i < messages; i++ {
		src := graph.ProcessID(rng.Intn(n))
		dst := graph.ProcessID(rng.Intn(n - 1))
		if dst >= src {
			dst++
		}
		out = append(out, workloadEntry{Src: src, Dst: dst})
	}
	return out
}

// schedule derives the workload's arrival offsets from (seed, rate,
// arrival) on a dedicated rng stream. Every process computes the
// identical list, so the cluster-wide offered rate is shared without
// coordination: each node sleeps until its own entries' instants and
// lets everyone else's pass.
func schedule(n int, seed int64, rate float64, arrival string) ([]time.Duration, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x53434844)) // "SCHD": distinct stream from workload and protocol
	out := make([]time.Duration, n)
	var at time.Duration
	for i := range out {
		switch arrival {
		case "constant":
			at = time.Duration(float64(i) / rate * float64(time.Second))
		case "poisson":
			at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		default:
			return nil, fmt.Errorf("unknown -arrival %q (want poisson or constant)", arrival)
		}
		out[i] = at
	}
	return out, nil
}

// parsePartitions parses "start:dur:u-v[;u-v]" windows, comma-separated.
func parsePartitions(s string) ([]transport.PartitionWindow, error) {
	if s == "" {
		return nil, nil
	}
	var out []transport.PartitionWindow
	for _, spec := range strings.Split(s, ",") {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("partition %q: want start:dur:u-v[;u-v]", spec)
		}
		start, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("partition %q: %v", spec, err)
		}
		dur, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("partition %q: %v", spec, err)
		}
		var edges [][2]graph.ProcessID
		for _, e := range strings.Split(parts[2], ";") {
			uv := strings.SplitN(e, "-", 2)
			if len(uv) != 2 {
				return nil, fmt.Errorf("partition edge %q: want u-v", e)
			}
			u, err1 := strconv.Atoi(uv[0])
			v, err2 := strconv.Atoi(uv[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("partition edge %q: want u-v", e)
			}
			edges = append(edges, [2]graph.ProcessID{graph.ProcessID(u), graph.ProcessID(v)})
		}
		out = append(out, transport.PartitionWindow{Start: start, Duration: dur, Edges: edges})
	}
	return out, nil
}

// chaosOpts translates the impairment flags; ok reports whether any
// impairment is requested at all.
func chaosOpts(cfg config) (transport.ChaosOptions, bool, error) {
	windows, err := parsePartitions(cfg.partitions)
	if err != nil {
		return transport.ChaosOptions{}, false, err
	}
	opts := transport.ChaosOptions{
		Seed:       cfg.seed,
		Latency:    cfg.latency,
		Jitter:     cfg.jitter,
		LossRate:   cfg.loss,
		DupRate:    cfg.dup,
		Partitions: windows,
	}
	on := cfg.loss > 0 || cfg.dup > 0 || cfg.latency > 0 || cfg.jitter > 0 || len(windows) > 0
	return opts, on, nil
}

// report is the one JSON line a node prints on stdout. The launcher (or
// any external judge) joins all nodes' reports to check exactly-once.
type report struct {
	ID        int         `json:"id"`
	Sent      []sentRec   `json:"sent"`
	Delivered []delivRec  `json:"delivered"`
	Expected  int         `json:"expected"`
	Stats     wireSummary `json:"stats"`

	// Achieved per-node rates, messages/second: sends over this node's
	// injection window, valid deliveries over the span from start to the
	// last delivery. Always reported (0 when the node sent or received
	// nothing).
	SendRate    float64 `json:"sendRate"`
	DeliverRate float64 `json:"deliverRate"`

	// Latency carries this node's delivery-latency quantiles and Hist the
	// mergeable histogram shard behind them — only in -rate mode, where
	// payloads are tagged with their scheduled instants. The launcher
	// merges all nodes' shards into cluster-wide quantiles.
	Latency *load.LatencySummary `json:"latency,omitempty"`
	Hist    *metrics.LatencyHist `json:"hist,omitempty"`

	// TagVersion is the payload-tag codec this node speaks in -rate mode
	// (0 outside rate mode); TagMismatches counts valid deliveries whose
	// payload carried a recognizable tag of a *different* version. The
	// judge turns any nonzero count — and any version disagreement across
	// the cluster — into exactly-once violations, so a mixed-binary
	// deployment fails loudly instead of silently mis-measuring.
	TagVersion    int `json:"tagVersion,omitempty"`
	TagMismatches int `json:"tagMismatches,omitempty"`

	// MetricsAddr is the node's debug-mux address when -http is set; the
	// judge scrapes <addr>/metrics while the node idles on stdin.
	MetricsAddr string `json:"metricsAddr,omitempty"`

	// Event-driven occupancy high-water marks from the telemetry registry
	// (exact, not tick samples), plus the congested-hop park counter. The
	// judge cross-checks them against the delivery record: a node that
	// delivered must have occupied both buffers, a node that sent must
	// have had pending work, and park events imply a nonzero parked peak.
	PeakBufR    int64 `json:"peakBufR,omitempty"`
	PeakBufE    int64 `json:"peakBufE,omitempty"`
	PeakPending int64 `json:"peakPending,omitempty"`
	PeakParked  int64 `json:"peakParked,omitempty"`
	ParkEvents  int64 `json:"parkEvents,omitempty"`
}

type sentRec struct {
	UID uint64 `json:"uid"`
	Dst int    `json:"dst"`
}

type delivRec struct {
	UID   uint64 `json:"uid"`
	Src   int    `json:"src"`
	Valid bool   `json:"valid"`
}

// wireSummary is the slice of msgpass.Stats worth shipping in a report.
type wireSummary struct {
	Offers      int    `json:"offers"`
	LostImpair  int    `json:"lostImpair"`
	LostFull    int    `json:"lostFull"`
	Duplicated  uint64 `json:"duplicated"`
	BytesSent   uint64 `json:"bytesSent"`
	BytesRecvd  uint64 `json:"bytesRecvd"`
	Dials       uint64 `json:"dials"`
	Redials     uint64 `json:"redials"`
	FramesSent  uint64 `json:"framesSent"`
	FramesRecvd uint64 `json:"framesRecvd"`
}

func summarize(s msgpass.Stats) wireSummary {
	return wireSummary{
		Offers:      s.OffersSent,
		LostImpair:  s.LostInjected,
		LostFull:    s.LostCongestion,
		Duplicated:  s.Wire.Duplicated,
		BytesSent:   s.Wire.BytesSent,
		BytesRecvd:  s.Wire.BytesRecvd,
		Dials:       s.Wire.Dials,
		Redials:     s.Wire.Redials,
		FramesSent:  s.Wire.FramesSent,
		FramesRecvd: s.Wire.FramesRecvd,
	}
}

// runNode runs one processor over TCP: open the wire, run the protocol,
// execute this node's share of the workload, report, then keep
// forwarding until stdin closes.
func runNode(cfg config) error {
	rt, err := bootNode(cfg)
	if err != nil {
		return err
	}
	defer rt.close()
	g, local, nw, reg := rt.g, rt.local, rt.nw, rt.reg

	// Process-side health counter: valid deliveries carrying a
	// recognizable tag of a different codec version.
	tagMismatchCounter := reg.Counter(telemetry.SeriesTagMismatches,
		"Valid deliveries whose payload tag speaks a different codec version.")

	debugSrv, err := serveDebug(cfg, rt)
	if err != nil {
		return err
	}
	if debugSrv != nil {
		defer debugSrv.Close()
	}
	stopEmit, err := startEmitter(cfg, reg)
	if err != nil {
		return err
	}
	defer stopEmit()

	plan := workload(g, cfg.seed, cfg.messages)
	var sched []time.Duration
	if cfg.rate > 0 {
		if sched, err = schedule(len(plan), cfg.seed, cfg.rate, cfg.arrival); err != nil {
			return err
		}
	}
	expected := 0
	var sent []sentRec
	start := time.Now()
	for i, e := range plan {
		if e.Dst == local {
			expected++
		}
		if e.Src != local {
			continue
		}
		payload := fmt.Sprintf("m-%d-%d", e.Src, e.Dst)
		switch {
		case sched != nil:
			// Rate mode: hold each entry to its slot of the shared
			// cluster-wide schedule, and tag the payload with the
			// *scheduled* instant so the destination can compute latency
			// from the delivery alone — a send delayed by backpressure
			// counts that delay as latency (no coordinated omission).
			at := start.Add(sched[i])
			if d := time.Until(at); d > 0 {
				time.Sleep(d)
			}
			if cfg.legacyTags {
				payload = load.EncodeTagV1(i, e.Src, e.Dst, at.UnixNano())
			} else {
				payload = load.EncodeTag(i, e.Src, e.Dst, at.UnixNano())
			}
		case cfg.spread > 0 && len(plan) > 0:
			// Entry i of the global plan goes out at its slot of the
			// spread window, so sends straddle any partition cuts
			// scheduled inside it.
			at := time.Duration(i) * cfg.spread / time.Duration(len(plan))
			if d := at - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
		uid, err := nw.Send(local, payload, e.Dst)
		if err != nil {
			return fmt.Errorf("send %d->%d: %w", e.Src, e.Dst, err)
		}
		sent = append(sent, sentRec{UID: uid, Dst: int(e.Dst)})
	}
	sendWindow := time.Since(start)

	nw.WaitDelivered(expected, cfg.timeout)

	// The tag codec this node speaks; a recognizable tag of any other
	// version is counted as a mismatch for the judge.
	speaks := load.TagVersionCurrent
	parseTag := load.ParseTag
	if cfg.legacyTags {
		speaks = 1
		parseTag = load.ParseTagV1
	}
	var delivered []delivRec
	var hist metrics.LatencyHist
	var lastDelivery time.Time
	validDeliveries, tagMismatches := 0, 0
	for _, d := range nw.Deliveries() {
		delivered = append(delivered, delivRec{UID: d.Msg.UID, Src: int(d.Msg.Src), Valid: d.Msg.Valid})
		if !d.Msg.Valid {
			continue
		}
		validDeliveries++
		if d.Time.After(lastDelivery) {
			lastDelivery = d.Time
		}
		if _, _, _, schedNanos, ok := parseTag(d.Msg.Payload); ok {
			hist.Add(d.Time.UnixNano() - schedNanos)
		} else if v := load.TagVersion(d.Msg.Payload); v != 0 && v != speaks {
			tagMismatches++
			tagMismatchCounter.Inc()
		}
	}
	rep := report{
		ID:        cfg.id,
		Sent:      sent,
		Delivered: delivered,
		Expected:  expected,
		Stats:     summarize(nw.Stats()),
	}
	if cfg.rate > 0 {
		rep.TagVersion = speaks
	}
	rep.TagMismatches = tagMismatches
	if len(sent) > 0 && sendWindow > 0 {
		rep.SendRate = float64(len(sent)) / sendWindow.Seconds()
	}
	if span := lastDelivery.Sub(start); validDeliveries > 0 && span > 0 {
		rep.DeliverRate = float64(validDeliveries) / span.Seconds()
	}
	if hist.Count() > 0 {
		sum := load.SummarizeHist(&hist)
		rep.Latency = &sum
		rep.Hist = &hist
	}
	if debugSrv != nil {
		rep.MetricsAddr = debugSrv.Addr()
	}
	proc := telemetry.L("proc", strconv.Itoa(cfg.id))
	rep.PeakBufR, _ = reg.PeakValue(telemetry.SeriesBufOccupancy, proc, telemetry.L("buf", "R"))
	rep.PeakBufE, _ = reg.PeakValue(telemetry.SeriesBufOccupancy, proc, telemetry.L("buf", "E"))
	rep.PeakPending, _ = reg.PeakValue(telemetry.SeriesPending, proc)
	rep.PeakParked, _ = reg.PeakValue(telemetry.SeriesParked, proc)
	rep.ParkEvents, _ = reg.Value(telemetry.SeriesParkEvents)
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, string(enc))
	if err := out.Flush(); err != nil {
		return err
	}

	// Keep forwarding for peers whose traffic routes through us; the
	// launcher signals "everyone reported" by closing our stdin.
	io.Copy(io.Discard, os.Stdin)
	return nil
}
