package main

import (
	"testing"
	"time"

	"ssmfp/internal/graph"
)

// TestElasticChurnExactlyOnce runs the full churn scenario end to end:
// fork a base ring of -serve nodes over loopback TCP, join two nodes,
// gracefully cut a link and drain one member — all under sustained
// injected load — and require the exactly-once verdict. Children are
// this test binary re-executed via the TestMain marker (see
// spawn_test.go).
func TestElasticChurnExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process elastic test skipped in -short mode")
	}
	t.Setenv("SSMFP_NODE_CHILD", "1")
	cfg := config{
		spawn:   4,
		elastic: true,
		seed:    11,
		tick:    2 * time.Millisecond,
		timeout: 30 * time.Second,
	}
	if err := run(cfg); err != nil {
		t.Fatalf("elastic churn scenario failed: %v", err)
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("0=http://a:1, 2=http://b:2")
	if err != nil {
		t.Fatalf("parseTargets: %v", err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[2] != "http://b:2" {
		t.Fatalf("parseTargets = %v", got)
	}
	for _, bad := range []string{"", "0", "x=http://a", "0="} {
		if _, err := parseTargets(bad); err == nil {
			t.Fatalf("parseTargets(%q) accepted", bad)
		}
	}
}

// TestTopoFromStatus: the operator console's topology reconstruction
// (slot count + edge set, as NodeStatus reports them) reproduces the
// original graph, absent slots included.
func TestTopoFromStatus(t *testing.T) {
	orig := graph.Ring(5)
	topo, err := topoFrom(7, orig.Edges()) // slots 5 and 6 allocated but absent
	if err != nil {
		t.Fatalf("topoFrom: %v", err)
	}
	g, err := topo.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 7 {
		t.Fatalf("slot space %d, want 7", g.N())
	}
	if len(g.Edges()) != len(orig.Edges()) {
		t.Fatalf("edges %v, want %v", g.Edges(), orig.Edges())
	}
	for _, bad := range []struct {
		slots int
		edges [][2]graph.ProcessID
	}{
		{0, nil},
		{3, [][2]graph.ProcessID{{0, 3}}},
		{3, [][2]graph.ProcessID{{1, 1}}},
	} {
		if _, err := topoFrom(bad.slots, bad.edges); err == nil {
			t.Fatalf("topoFrom(%d, %v) accepted", bad.slots, bad.edges)
		}
	}
}
