// Command ssmfp-sim runs one SSMFP scenario in the state model and prints
// the outcome: specification verdict, step/round counts, per-rule move
// breakdown, latency statistics, and routing-stabilization time.
//
// Usage:
//
//	ssmfp-sim [-topology line|ring|star|grid|torus|hypercube|complete|tree|random]
//	          [-n 8] [-daemon synchronous|central-random|central-round-robin|distributed-random|weakly-fair-lifo]
//	          [-corrupt] [-messages 10] [-pattern random|all-to-one|one-to-all|all-to-all|permutation]
//	          [-workload-file trace.txt] [-seed 1] [-max-steps 10000000]
//	          [-shards 1] [-paranoid] [-v]
//	          [-trace-out run.jsonl] [-trace-dest 0] [-metrics-out lifecycle.json] [-http 127.0.0.1:0]
//
// -trace-out streams the run as a JSONL event trace (replayable with
// ssmfp-trace -replay when no faults are injected); -metrics-out writes the
// per-message lifecycle report as JSON; -http serves expvar, pprof and a
// JSON status snapshot under /debug while the run executes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync/atomic"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
	"ssmfp/internal/workload"
)

func main() {
	topology := flag.String("topology", "grid", "network family")
	n := flag.Int("n", 9, "number of processors (grids/tori use the nearest square)")
	daemonKind := flag.String("daemon", "synchronous", "scheduler")
	policy := flag.String("policy", "fifo-queue", "choice_p(d) policy (fifo-queue, rotating, lowest-id)")
	corrupt := flag.Bool("corrupt", false, "start from a fully corrupted configuration")
	messages := flag.Int("messages", 10, "number of messages for random/pair patterns")
	pattern := flag.String("pattern", "random", "traffic pattern")
	workloadFile := flag.String("workload-file", "", "replay sends from a file ('src dest payload [atStep]' per line; overrides -pattern)")
	seed := flag.Int64("seed", 1, "random seed")
	maxSteps := flag.Int("max-steps", 10_000_000, "step cap")
	shards := flag.Int("shards", 1, "run on the sharded parallel step engine with this many shards (bit-identical to -shards 1; changes wall time only)")
	verbose := flag.Bool("v", false, "print per-rule move counts and engine stats")
	paranoid := flag.Bool("paranoid", false, "cross-check the incremental enabled set against a naive rescan every step")
	traceOut := flag.String("trace-out", "", "write the run as a JSONL event trace to this file")
	traceDest := flag.Int("trace-dest", 0, "focus destination recorded in the trace header")
	metricsOut := flag.String("metrics-out", "", "write the per-message lifecycle report (JSON) to this file")
	httpAddr := flag.String("http", "", "serve /debug/vars, /debug/pprof and /debug/ssmfp on this address during the run")
	flag.Parse()
	if *paranoid {
		// The engine is constructed inside sim.Run; the env var is how the
		// default self-check mode reaches it.
		os.Setenv("SSMFP_PARANOID", "1")
	}

	g, err := buildTopology(*topology, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	var w workload.Workload
	if *workloadFile != "" {
		f, err := os.Open(*workloadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
			os.Exit(2)
		}
		w, err = workload.Parse(f, g)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
			os.Exit(2)
		}
	} else {
		var err error
		w, err = buildWorkload(*pattern, g, *messages, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
			os.Exit(2)
		}
	}

	sc := sim.Scenario{
		Name:     fmt.Sprintf("%s-%d", *topology, g.N()),
		Graph:    g,
		Daemon:   sim.DaemonKind(*daemonKind),
		Seed:     *seed,
		Workload: w,
		MaxSteps: *maxSteps,
		Shards:   *shards,
	}
	switch *policy {
	case "fifo-queue":
		sc.Policy = core.PolicyQueue
	case "rotating":
		sc.Policy = core.PolicyRotating
	case "lowest-id":
		sc.Policy = core.PolicyLowestID
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-sim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if *corrupt {
		c := core.DefaultCorrupt
		sc.Corrupt = &c
	}

	var traceFile *os.File
	if *traceOut != "" {
		if *traceDest < 0 || *traceDest >= g.N() {
			fmt.Fprintf(os.Stderr, "ssmfp-sim: -trace-dest %d out of range [0,%d)\n", *traceDest, g.N())
			os.Exit(2)
		}
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
			os.Exit(2)
		}
		sc.TraceOut = traceFile
		sc.TraceDest = graph.ProcessID(*traceDest)
	}
	if *metricsOut != "" {
		sc.Lifecycle = true
	}
	var lastStatus atomic.Pointer[sim.Status]
	if *httpAddr != "" {
		sc.OnStatus = func(st sim.Status) { lastStatus.Store(&st) }
		srv, err := obs.Serve(*httpAddr, func() any { return lastStatus.Load() })
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssmfp-sim: debug endpoints on http://%s/debug/\n", srv.Addr())
	}

	r := sim.Run(sc)

	if traceFile != nil {
		if r.TraceErr != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim: trace:", r.TraceErr)
			os.Exit(2)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim: trace:", err)
			os.Exit(2)
		}
		fmt.Printf("trace     : %d events -> %s\n", r.TraceEvents, *traceOut)
	}
	if *metricsOut != "" {
		data, err := json.MarshalIndent(r.Lifecycle, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-sim: metrics:", err)
			os.Exit(2)
		}
		rep := r.Lifecycle
		fmt.Printf("lifecycle : %d messages, %d delivered; delivery mean %.1f / delay mean %.1f / waiting mean %.1f rounds -> %s\n",
			rep.Messages, rep.Delivered, rep.DeliveryRounds.Mean, rep.DelayRounds.Mean, rep.WaitingRounds.Mean, *metricsOut)
	}

	fmt.Printf("network   : %v\n", g)
	fmt.Printf("daemon    : %s\n", *daemonKind)
	fmt.Printf("corrupt   : %v\n", *corrupt)
	fmt.Printf("workload  : %s (%s)\n", *pattern, w)
	fmt.Printf("steps     : %d (rounds %d)\n", r.Steps, r.Rounds)
	if r.RoutingRounds >= 0 {
		fmt.Printf("A silent  : after %d rounds\n", r.RoutingRounds)
	}
	fmt.Printf("generated : %d, delivered %d valid + %d invalid\n",
		r.Generated, r.DeliveredValid, r.InvalidDelivered)
	if r.LatencyRounds.N > 0 {
		fmt.Printf("latency   : mean %.1f / p90 %.0f / max %.0f rounds\n",
			r.LatencyRounds.Mean, r.LatencyRounds.P90, r.LatencyRounds.Max)
	}
	if *verbose {
		t := metrics.NewTable("moves by rule", "rule", "count")
		var rules []string
		for rule := range r.MovesByRule {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			t.AddRow(rule, r.MovesByRule[rule])
		}
		fmt.Print(t)
		st := r.Stats
		fmt.Printf("engine    : %d guard evals in %d full scans + %d flushes (procs: %d evaluated, %d cached; %d dirty marks, %d self-checks)\n",
			st.GuardEvals, st.FullScans, st.Flushes, st.ProcsEvaluated, st.ProcsSkipped, st.DirtyMarks, st.SelfChecks)
		if *shards > 1 {
			fmt.Printf("sharding  : %d shards, %d moves in %d non-adjacent batches (%d oracle checks)\n",
				*shards, st.ParallelMoves, st.ParallelBatches, st.BoundaryChecks)
		}
	}
	if r.OK() {
		fmt.Println("verdict   : SP satisfied — every generated message delivered exactly once")
		return
	}
	fmt.Println("verdict   : SP VIOLATED")
	for _, v := range r.Violations {
		fmt.Println("  -", v)
	}
	if len(r.Lost) > 0 {
		fmt.Printf("  - %d messages undelivered\n", len(r.Lost))
	}
	os.Exit(1)
}

func buildTopology(kind string, n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("need n >= 2, got %d", n)
	}
	switch kind {
	case "line":
		return graph.Line(n), nil
	case "ring":
		if n < 3 {
			return nil, fmt.Errorf("ring needs n >= 3")
		}
		return graph.Ring(n), nil
	case "star":
		return graph.Star(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "tree":
		return graph.BinaryTree(n), nil
	case "grid":
		side := isqrt(n)
		return graph.Grid(side, (n+side-1)/side), nil
	case "torus":
		side := isqrt(n)
		if side < 3 {
			side = 3
		}
		return graph.Torus(side, side), nil
	case "hypercube":
		dim := 1
		for 1<<dim < n {
			dim++
		}
		return graph.Hypercube(dim), nil
	case "random":
		return graph.RandomConnected(n, 2*n, rand.New(rand.NewSource(int64(n)))), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func buildWorkload(pattern string, g *graph.Graph, k int, rng *rand.Rand) (workload.Workload, error) {
	switch pattern {
	case "random":
		return workload.RandomPairs(g, k, rng), nil
	case "all-to-one":
		return workload.AllToOne(g, 0, max(1, k/g.N())), nil
	case "one-to-all":
		return workload.OneToAll(g, 0, max(1, k/g.N())), nil
	case "all-to-all":
		return workload.AllToAll(g, 1), nil
	case "permutation":
		return workload.Permutation(g, rng), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}
