// Command ssmfp-check runs the exhaustive model checker: it enumerates
// every configuration reachable under every central-daemon schedule for a
// small scenario and verifies the safety invariants of Specification SP
// (no loss, no duplication, well-typed domains), the terminal conditions
// (quiescent, everything delivered exactly once), and progress (a terminal
// state is reachable from every state).
//
// Usage:
//
//	ssmfp-check [-scenario clean|same-payload|figure3|r5-literal] [-max-states 2000000] [-simultaneity 1|2]
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

func main() {
	scenario := flag.String("scenario", "figure3", "scenario to check (clean, same-payload, figure3, r5-literal)")
	maxStates := flag.Int("max-states", 2_000_000, "state cap")
	simultaneity := flag.Int("simultaneity", 1, "1 = all central schedules, 2 = also all simultaneous pairs")
	flag.Parse()

	g, prog, cfg, expectViolation, describe := buildScenario(*scenario)
	opts := explore.CoreOptions(g)
	opts.MaxStates = *maxStates
	opts.MaxSimultaneity = *simultaneity

	fmt.Println("scenario :", *scenario, "—", describe)
	fmt.Println("network  :", g)
	r := explore.Explore(g, prog, cfg, opts)
	fmt.Println("result   :", r)
	if r.InvariantErr != nil {
		fmt.Println("invariant:", r.InvariantErr)
		fmt.Println("schedule :", r.Witness)
	}
	if r.TerminalErr != nil {
		fmt.Println("terminal :", r.TerminalErr)
	}

	if expectViolation {
		if r.InvariantErr == nil {
			fmt.Println("verdict  : FAIL — expected the literal R5 to lose a message, but no schedule did")
			os.Exit(1)
		}
		fmt.Println("verdict  : OK — the model checker found the loss the literal R5 admits")
		return
	}
	if !r.OK() {
		fmt.Println("verdict  : FAIL")
		os.Exit(1)
	}
	fmt.Println("verdict  : OK — every central schedule satisfies SP")
}

func buildScenario(name string) (*graph.Graph, sm.Program, []sm.State, bool, string) {
	switch name {
	case "clean":
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Enqueue("m", 2)
		return g, core.FullProgram(g), cfg, false, "one message over a clean line"
	case "same-payload":
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Enqueue("same", 2)
		cfg[0].(*core.Node).FW.Enqueue("same", 2)
		return g, core.FullProgram(g), cfg, false, "two equal-payload messages (color machinery)"
	case "figure3":
		g := graph.Figure3Network()
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).RT.Parent[1] = 2
		cfg[0].(*core.Node).RT.Dist[1] = 2
		cfg[2].(*core.Node).RT.Parent[1] = 0
		cfg[2].(*core.Node).RT.Dist[1] = 2
		cfg[1].(*core.Node).FW.Dests[1].BufR = &core.Message{
			Payload: "data", LastHop: 2, Color: 0, UID: 1 << 50, Src: 1, Dest: 1, Valid: false}
		cfg[2].(*core.Node).FW.Enqueue("data", 1)
		return g, core.FullProgram(g), cfg, false,
			"the Figure 3 corruption: a↔c routing cycle + colliding invalid message"
	case "r5-literal":
		g := graph.Line(3)
		cfg := core.CleanConfig(g)
		cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{
			Payload: "x", LastHop: 0, Color: 0, UID: 1 << 51, Src: 0, Dest: 2, Valid: false}
		cfg[0].(*core.Node).FW.Enqueue("x", 2)
		return g, core.LiteralR5Program(g), cfg, true,
			"Algorithm 1's R5 as printed (no q ≠ p) — the reproduction finding"
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-check: unknown scenario %q\n", name)
		os.Exit(2)
		return nil, nil, nil, false, ""
	}
}
