// Command ssmfp-trace renders executions of SSMFP frame by frame in the
// style of the paper's Figure 3. By default it replays the reconstructed
// Figure 3 scenario; with -scenario=corrupt it records a random corrupted
// run for one destination; with -replay it re-renders a JSONL event trace
// captured earlier (ssmfp-sim -trace-out, ssmfp-bench -trace-out) by
// folding the value-carrying events over the recorded initial
// configuration — the result is byte-identical to what a live recorder
// would have printed.
//
// Usage:
//
//	ssmfp-trace [-scenario figure3|corrupt] [-seed 1] [-frames 40]
//	ssmfp-trace -replay run.jsonl [-dest d] [-frames 40] [-validate]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "figure3", "what to trace (figure3 or corrupt)")
	seed := flag.Int64("seed", 1, "seed for the corrupt scenario")
	frames := flag.Int("frames", 40, "frame limit for the corrupt scenario and -replay (0 = all)")
	replay := flag.String("replay", "", "re-render a recorded JSONL trace instead of running a scenario")
	dest := flag.Int("dest", -1, "destination to replay (-replay only; default: the trace header's focus destination)")
	validate := flag.Bool("validate", false, "with -replay: only load and validate the trace, print a summary, render nothing")
	flag.Parse()

	if *replay != "" {
		if err := runReplay(*replay, *dest, *frames, *validate); err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-trace:", err)
			os.Exit(1)
		}
		return
	}

	switch *scenario {
	case "figure3":
		r := sim.ExperimentF3()
		fmt.Println("Figure 3 replay — network a,b,c,e; destination b; a↔c routing cycle;")
		fmt.Println("invalid message (color 0) in bufR_b; c sends \"hello\" then \"data\".")
		fmt.Println()
		fmt.Print(r.Trace)
		if !r.OK {
			fmt.Println("REPLAY FAILED:")
			for _, f := range r.Failures {
				fmt.Println("  -", f)
			}
			os.Exit(1)
		}
		fmt.Printf("replay ok: %d deliveries (%d valid, %d invalid), m received color %d\n",
			r.Deliveries, r.ValidDelivered, r.InvalidDelivered, r.HelloColor)
	case "corrupt":
		g := graph.Figure1Network()
		rng := rand.New(rand.NewSource(*seed))
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		cfg[0].(*core.Node).FW.Enqueue("probe", 4)
		e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(*seed), cfg)
		rec := trace.NewRecorder(e, trace.NewRenderer(g, nil), 4, *frames)
		e.Run(1_000_000, nil)
		fmt.Printf("corrupted run on %v, destination 4, seed %d (first %d frames):\n\n", g, *seed, *frames)
		fmt.Print(rec.String())
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-trace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

// runReplay loads a JSONL trace, optionally validates only, and re-renders
// the frames of one destination.
func runReplay(path string, dest, frameLimit int, validateOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, events, err := obs.Load(f)
	if err != nil {
		return err
	}
	if validateOnly {
		fmt.Printf("%s: valid schema-%d trace: scenario %q, n=%d, m=%d, dest=%d, %d events\n",
			path, h.Schema, h.Scenario, h.N, len(h.Edges), h.Dest, len(events))
		return nil
	}
	d := graph.ProcessID(h.Dest)
	if dest >= 0 {
		d = graph.ProcessID(dest)
	}
	g, err := trace.GraphFromHeader(h)
	if err != nil {
		return err
	}
	r := trace.NewRenderer(g, trace.NamesFromHeader(h))
	fs, err := trace.ReplayFrames(r, h, events, d)
	if err != nil {
		return err
	}
	total := len(fs)
	if frameLimit > 0 && len(fs) > frameLimit {
		fs = fs[:frameLimit]
	}
	fmt.Printf("replay of %s: scenario %q, destination %s, %d frames", path, h.Scenario, r.Name(d), total)
	if len(fs) < total {
		fmt.Printf(" (showing %d)", len(fs))
	}
	fmt.Print("\n\n")
	fmt.Print(trace.RenderFrames(fs))
	return nil
}
