// Command ssmfp-trace renders executions of SSMFP frame by frame in the
// style of the paper's Figure 3. By default it replays the reconstructed
// Figure 3 scenario; with -scenario=corrupt it records a random corrupted
// run for one destination.
//
// Usage:
//
//	ssmfp-trace [-scenario figure3|corrupt] [-seed 1] [-frames 40]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	"ssmfp/internal/sim"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "figure3", "what to trace (figure3 or corrupt)")
	seed := flag.Int64("seed", 1, "seed for the corrupt scenario")
	frames := flag.Int("frames", 40, "frame limit for the corrupt scenario")
	flag.Parse()

	switch *scenario {
	case "figure3":
		r := sim.ExperimentF3()
		fmt.Println("Figure 3 replay — network a,b,c,e; destination b; a↔c routing cycle;")
		fmt.Println("invalid message (color 0) in bufR_b; c sends \"hello\" then \"data\".")
		fmt.Println()
		fmt.Print(r.Trace)
		if !r.OK {
			fmt.Println("REPLAY FAILED:")
			for _, f := range r.Failures {
				fmt.Println("  -", f)
			}
			os.Exit(1)
		}
		fmt.Printf("replay ok: %d deliveries (%d valid, %d invalid), m received color %d\n",
			r.Deliveries, r.ValidDelivered, r.InvalidDelivered, r.HelloColor)
	case "corrupt":
		g := graph.Figure1Network()
		rng := rand.New(rand.NewSource(*seed))
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		cfg[0].(*core.Node).FW.Enqueue("probe", 4)
		e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(*seed), cfg)
		rec := trace.NewRecorder(e, trace.NewRenderer(g, nil), 4, *frames)
		e.Run(1_000_000, nil)
		fmt.Printf("corrupted run on %v, destination 4, seed %d (first %d frames):\n\n", g, *seed, *frames)
		fmt.Print(rec.String())
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-trace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}
