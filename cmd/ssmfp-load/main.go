// ssmfp-load drives open- or closed-loop traffic through a live SSMFP
// deployment and reports latency quantiles, achieved throughput, queue
// gauges and the exactly-once verdict as a versioned JSON report
// (ssmfp-load-report/v1) that `ssmfp-bench compare` can gate on.
//
//	# one open-loop step: 2000 msg/s Poisson over a 4x4 grid
//	ssmfp-load -topology grid -rows 4 -cols 4 -rate 2000 -messages 2000
//
//	# closed-loop with 4 outstanding per source, over a lossy wire
//	ssmfp-load -topology ring -n 8 -driver closed -outstanding 4 -loss 0.05
//
//	# saturation sweep: step the offered rate geometrically, find the knee
//	ssmfp-load -topology grid -rows 4 -cols 4 -sweep -json report.json
//
// The process exits nonzero if any step violates exactly-once delivery
// or delivers nothing at all, so it doubles as a smoke gate in CI.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
)

type config struct {
	topology   string
	rows, cols int
	n          int
	edges      int

	driver      string
	arrival     string
	rate        float64
	outstanding int
	messages    int
	warmup      int
	seed        int64
	drain       time.Duration
	tick        time.Duration

	loss      float64
	dup       float64
	latency   time.Duration
	jitter    time.Duration
	bandwidth int
	netTick   time.Duration

	sweep      bool
	sweepStart float64
	sweepGrow  float64
	sweepSteps int
	kneeRatio  float64

	jsonPath string
	progress bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.topology, "topology", "grid", "topology: line, ring, star, complete, grid, random")
	flag.IntVar(&cfg.rows, "rows", 4, "grid rows")
	flag.IntVar(&cfg.cols, "cols", 4, "grid cols")
	flag.IntVar(&cfg.n, "n", 8, "processor count for non-grid topologies")
	flag.IntVar(&cfg.edges, "edges", 0, "extra edges beyond the spanning tree for -topology random (default n/2)")
	flag.StringVar(&cfg.driver, "driver", "open", "traffic driver: open (schedule-driven) or closed (window-driven)")
	flag.StringVar(&cfg.arrival, "arrival", "poisson", "open-loop arrival process: poisson or constant")
	flag.Float64Var(&cfg.rate, "rate", 1000, "open-loop offered rate, messages/second")
	flag.IntVar(&cfg.outstanding, "outstanding", 4, "closed-loop window per source")
	flag.IntVar(&cfg.messages, "messages", 1000, "messages per step")
	flag.IntVar(&cfg.warmup, "warmup", 64, "untracked warmup messages before each measured step")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the injection plan and protocol randomness")
	flag.DurationVar(&cfg.drain, "drain-timeout", 60*time.Second, "wait this long for stragglers after injection")
	flag.DurationVar(&cfg.tick, "tick", 0, "publish a load-tick progress beat at this period (0 = off)")
	flag.Float64Var(&cfg.loss, "loss", 0, "chaos: drop each frame with this probability")
	flag.Float64Var(&cfg.dup, "dup", 0, "chaos: duplicate each frame with this probability")
	flag.DurationVar(&cfg.latency, "latency", 0, "chaos: base one-way frame delay")
	flag.DurationVar(&cfg.jitter, "jitter", 0, "chaos: extra uniform per-frame delay")
	flag.IntVar(&cfg.bandwidth, "bandwidth", 0, "chaos: per-link line rate in bytes/second (0 = unlimited)")
	flag.DurationVar(&cfg.netTick, "net-tick", 0, "protocol timer period (default 200µs)")
	flag.BoolVar(&cfg.sweep, "sweep", false, "step the offered rate up a geometric ladder and locate the saturation knee")
	flag.Float64Var(&cfg.sweepStart, "sweep-start", 500, "sweep: first offered rate")
	flag.Float64Var(&cfg.sweepGrow, "sweep-factor", 2, "sweep: rate multiplier between steps")
	flag.IntVar(&cfg.sweepSteps, "sweep-steps", 6, "sweep: number of rate steps")
	flag.Float64Var(&cfg.kneeRatio, "knee-ratio", 0.9, "sweep: goodput ratio defining the saturation knee")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the report to this file ('-' for stdout)")
	flag.BoolVar(&cfg.progress, "progress", false, "print live progress lines to stderr")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ssmfp-load: %v\n", err)
		os.Exit(1)
	}
}

// buildTopology resolves the topology flags to a graph and its label.
func buildTopology(cfg config) (*graph.Graph, string, error) {
	switch cfg.topology {
	case "grid":
		return graph.Grid(cfg.rows, cfg.cols), fmt.Sprintf("grid-%dx%d", cfg.rows, cfg.cols), nil
	case "line":
		return graph.Line(cfg.n), fmt.Sprintf("line-%d", cfg.n), nil
	case "ring":
		return graph.Ring(cfg.n), fmt.Sprintf("ring-%d", cfg.n), nil
	case "star":
		return graph.Star(cfg.n), fmt.Sprintf("star-%d", cfg.n), nil
	case "complete":
		return graph.Complete(cfg.n), fmt.Sprintf("complete-%d", cfg.n), nil
	case "random":
		m := cfg.edges
		if m <= 0 {
			m = cfg.n / 2
		}
		rng := rand.New(rand.NewSource(cfg.seed))
		return graph.RandomConnected(cfg.n, m, rng), fmt.Sprintf("random-%d+%d", cfg.n, m), nil
	default:
		return nil, "", fmt.Errorf("unknown -topology %q", cfg.topology)
	}
}

func run(cfg config) error {
	g, label, err := buildTopology(cfg)
	if err != nil {
		return err
	}
	bus := obs.NewBus()
	if cfg.progress {
		bus.Subscribe(func(ev obs.Event) {
			if ev.Kind == obs.KindLoadTick || ev.Kind == obs.KindLoadDone {
				fmt.Fprintf(os.Stderr, "%s %s\n", ev.Kind, ev.Detail)
			}
		})
		if cfg.tick <= 0 {
			cfg.tick = 500 * time.Millisecond
		}
	}

	base := load.Config{
		Driver:       cfg.driver,
		Arrival:      cfg.arrival,
		Rate:         cfg.rate,
		Outstanding:  cfg.outstanding,
		Messages:     cfg.messages,
		Warmup:       cfg.warmup,
		Seed:         cfg.seed,
		DrainTimeout: cfg.drain,
		TickEvery:    cfg.tick,
		Bus:          bus,
	}
	factory := func(step int) (load.Network, *load.Hook, func(), error) {
		hook := &load.Hook{}
		nw := msgpass.New(g, msgpass.Options{
			Seed:         cfg.seed + int64(step),
			Tick:         cfg.netTick,
			LossRate:     cfg.loss,
			DupRate:      cfg.dup,
			Latency:      cfg.latency,
			Jitter:       cfg.jitter,
			BandwidthBps: cfg.bandwidth,
			Bus:          bus,
			OnDeliver:    hook.OnDeliver,
			// Nodes stamp R1-queue and park waits into the payload tag's
			// hold slot so the collector can attribute end-to-end latency.
			HoldStamp: load.AddHold,
			// The collector is the only consumer of deliveries; skipping
			// the network's own delivery log keeps the measured path free
			// of per-delivery allocations.
			DiscardDeliveries: true,
		})
		nw.Start()
		return nw, hook, func() { nw.Stop() }, nil
	}

	var rep *load.Report
	if cfg.sweep {
		rep, err = load.Sweep(label, g, factory, load.SweepConfig{
			Base:      base,
			Start:     cfg.sweepStart,
			Factor:    cfg.sweepGrow,
			Steps:     cfg.sweepSteps,
			KneeRatio: cfg.kneeRatio,
		})
		if err != nil {
			return err
		}
	} else {
		start := time.Now()
		nw, hook, closeFn, _ := factory(0)
		step, err := load.Run(nw, g, hook, base)
		closeFn()
		if err != nil {
			return err
		}
		rep = load.NewReport(label, base, false, []load.StepReport{step})
		rep.Run = load.NewRunInfo(start)
	}

	if err := emit(rep, cfg.jsonPath); err != nil {
		return err
	}
	summarize(rep)
	if !rep.ExactlyOnce {
		return fmt.Errorf("exactly-once verdict: FAIL")
	}
	for i, s := range rep.Steps {
		if s.Hist == nil || s.Hist.Count() == 0 {
			return fmt.Errorf("step %d delivered nothing (empty latency histogram)", i)
		}
	}
	return nil
}

func emit(rep *load.Report, path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		b, err := rep.Marshal()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	return rep.WriteFile(path)
}

// summarize prints the human-readable digest to stderr (stdout stays
// clean for -json -).
func summarize(rep *load.Report) {
	for _, s := range rep.Steps {
		fmt.Fprintf(os.Stderr,
			"step %d: offered %.0f/s achieved %.0f/s goodput %.2f p50 %v p99 %v exactly-once %v\n",
			s.Step, s.OfferedRate, s.AchievedRate, s.GoodputRatio,
			time.Duration(s.Latency.P50NS), time.Duration(s.Latency.P99NS), s.ExactlyOnce)
	}
	if rep.Sweep {
		knee := "no knee below the ladder top"
		if rep.Saturated {
			knee = fmt.Sprintf("knee at step %d (%.0f msg/s offered)", rep.KneeStep, rep.KneeRate)
		}
		fmt.Fprintf(os.Stderr, "%s: %s, max achieved %.0f msg/s\n", rep.Topology, knee, rep.MaxAchieved)
	}
	// One-line telemetry digest of the most telling step: peak buffer
	// occupancy, congestion parks, and where the latency went.
	if s := telemetryStep(rep); s != nil {
		line := fmt.Sprintf("telemetry step %d: peak bufR %d, parked peak %d, park events %d",
			s.Step, s.Queues.PeakBufR, s.Queues.PeakParked, s.Queues.ParkEvents)
		if a := s.Attribution; a != nil {
			total := a.Hold.MeanNS + a.Wire.MeanNS + a.Deliver.MeanNS
			if total > 0 {
				line += fmt.Sprintf(", latency split hold %.0f%% wire %.0f%% deliver %.0f%%",
					100*a.Hold.MeanNS/total, 100*a.Wire.MeanNS/total, 100*a.Deliver.MeanNS/total)
			}
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// telemetryStep picks the step the telemetry digest should describe: the
// sweep's knee rung, or the only step of a single run.
func telemetryStep(rep *load.Report) *load.StepReport {
	if len(rep.Steps) == 0 {
		return nil
	}
	i := 0
	if rep.Sweep && rep.KneeStep < len(rep.Steps) {
		i = rep.KneeStep
	}
	return &rep.Steps[i]
}
