// Command ssmfp-workload generates workload files for ssmfp-sim's
// -workload-file flag: each line is "src dest payload atStep".
//
// Usage:
//
//	ssmfp-workload -topology ring -n 8 -pattern all-to-one -k 2 -stagger 10 > trace.txt
//	ssmfp-sim -topology ring -n 8 -workload-file trace.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ssmfp/internal/graph"
	"ssmfp/internal/workload"
)

func main() {
	topology := flag.String("topology", "ring", "network family (line, ring, star, grid)")
	n := flag.Int("n", 8, "number of processors")
	pattern := flag.String("pattern", "random", "traffic pattern (random, all-to-one, one-to-all, all-to-all, permutation, hot-spot)")
	k := flag.Int("k", 10, "messages (total for random; per pair otherwise)")
	stagger := flag.Int("stagger", 0, "inject every S steps instead of all at step 0")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var g *graph.Graph
	switch *topology {
	case "line":
		g = graph.Line(*n)
	case "ring":
		g = graph.Ring(*n)
	case "star":
		g = graph.Star(*n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		g = graph.Grid(side, (*n+side-1)/side)
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-workload: unknown topology %q\n", *topology)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	var w workload.Workload
	switch *pattern {
	case "random":
		w = workload.RandomPairs(g, *k, rng)
	case "all-to-one":
		w = workload.AllToOne(g, 0, *k)
	case "one-to-all":
		w = workload.OneToAll(g, 0, *k)
	case "all-to-all":
		w = workload.AllToAll(g, 1)
	case "permutation":
		w = workload.Permutation(g, rng)
	case "hot-spot":
		w = workload.HotSpot(g, 0, *k, rng)
	default:
		fmt.Fprintf(os.Stderr, "ssmfp-workload: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	if *stagger > 0 {
		w = w.Staggered(*stagger)
	}
	if err := workload.Format(w, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-workload:", err)
		os.Exit(1)
	}
}
