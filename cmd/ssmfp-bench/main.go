// Command ssmfp-bench regenerates the experiments of the reproduction —
// the figures and propositions of the paper plus the comparison and
// message-passing extensions — as a parallel campaign over the experiment
// cell grid, printing the familiar tables and optionally writing a
// versioned machine-readable report.
//
// Usage:
//
//	ssmfp-bench [-seed N] [-seeds K] [-parallel W] [-shards S]
//	            [-filter p5,ep/grid] [-quick] [-paranoid]
//	            [-json BENCH.json] [-normalize] [-cells]
//	            [-progress] [-trace-out f3.jsonl]
//	ssmfp-bench compare BASELINE.json CURRENT.json
//	            [-wall-pct 25] [-alloc-pct 10] [-guard-pct 1]
//
// The campaign is deterministic: the normalized report (wall-clock,
// allocation and host fields excluded) is byte-identical for any
// -parallel and any -shards value; -normalize writes the -json report
// pre-normalized so reports from different shard/worker counts can be
// diffed byte-for-byte. compare exits 1 on a regression against the
// baseline and 2 on usage or I/O errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ssmfp/internal/campaign"
	"ssmfp/internal/load"
	"ssmfp/internal/metrics"
	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:]))
	}
	os.Exit(benchMain(os.Args[1:]))
}

func benchMain(args []string) int {
	fs := flag.NewFlagSet("ssmfp-bench", flag.ExitOnError)
	seed := fs.Int64("seed", 2009, "campaign seed (repetition 0 of every cell runs it directly)")
	seeds := fs.Int("seeds", 1, "repetitions per cell (rep > 0 uses derived seeds)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker count (any value yields the same normalized report)")
	shards := fs.Int("shards", 1, "run every engine on the sharded parallel step engine with this many shards (any value yields the same normalized report)")
	filter := fs.String("filter", "", "comma-separated cell-key prefixes (p5, ep/grid, f3)")
	experiment := fs.String("experiment", "", "alias for -filter (legacy flag)")
	quick := fs.Bool("quick", false, "skip the heavy cells")
	paranoid := fs.Bool("paranoid", false, "run every engine with the incremental self-check enabled (naive rescan cross-checks each step)")
	jsonOut := fs.String("json", "", "write the machine-readable campaign report to this file")
	normalize := fs.Bool("normalize", false, "normalize the -json report (zero volatile wall/alloc/host fields) for byte-for-byte diffing")
	listCells := fs.Bool("cells", false, "list the selected cells and exit without running")
	progress := fs.Bool("progress", false, "print per-cell progress to stderr")
	traceOut := fs.String("trace-out", "", "write the f3 replay as a JSONL event trace to this file")
	fs.Parse(args)

	cfg := campaign.Config{
		Seed: *seed, Seeds: *seeds, Parallel: *parallel, Shards: *shards,
		Filter: *filter, Quick: *quick, Paranoid: *paranoid,
	}
	if cfg.Filter == "" {
		cfg.Filter = *experiment
	}
	if *listCells {
		for _, s := range campaign.Select(cfg) {
			heavy := ""
			if s.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%s%s\n", s.Key(), heavy)
		}
		return 0
	}
	if *progress {
		cfg.OnResult = func(done, total int, cr campaign.CellReport, _ sim.CellResult) {
			verdict := "ok"
			if !cr.OK {
				verdict = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s#%d %s (%s)\n",
				done, total, cr.Key, cr.Rep, verdict, time.Duration(cr.WallNS).Round(time.Millisecond))
		}
	}

	if *traceOut != "" {
		if err := writeF3Trace(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-bench: trace:", err)
			return 2
		}
	}

	rep, results, err := campaign.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench:", err)
		return 2
	}
	render(rep, results)
	if *jsonOut != "" {
		if *normalize {
			rep.Normalize()
		}
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "ssmfp-bench:", err)
			return 2
		}
		fmt.Printf("campaign report: %d cells -> %s\n", rep.Totals.Cells, *jsonOut)
	}
	if rep.Totals.Failed > 0 {
		return 1
	}
	return 0
}

// render reassembles the legacy one-table-per-experiment output from the
// per-cell results: repetition-0 tables sharing a title are merged in
// canonical order, f3 prints its rendered trace, and E-P7's linear fit is
// recomputed across its merged cells.
func render(rep *campaign.Report, results []sim.CellResult) {
	var current *metrics.Table
	flush := func() {
		if current != nil {
			fmt.Println(current)
			current = nil
		}
	}
	var p7xs, p7ys []float64
	for i, res := range results {
		cr := rep.Cells[i]
		if cr.Rep != 0 {
			continue
		}
		if cr.Exp == "p7" && cr.Err == "" {
			p7xs = append(p7xs, cr.Measure.Extra["d"])
			p7ys = append(p7ys, cr.Measure.Extra["amortized"])
		}
		if res.Text != "" {
			flush()
			fmt.Println(res.Text)
		}
		if res.Table != nil {
			if current == nil || !current.AppendFrom(res.Table) {
				flush()
				current = res.Table
			}
		}
	}
	flush()
	if len(p7xs) >= 2 {
		fit := metrics.LinearFit(p7xs, p7ys)
		fmt.Printf("amortized-vs-D linear fit: slope=%.3f intercept=%.3f R²=%.3f\n\n", fit.Slope, fit.Intercept, fit.R2)
	}
	for _, cr := range rep.Cells {
		if cr.Err != "" {
			fmt.Printf("!! cell %s#%d ERROR: %s\n", cr.Key, cr.Rep, cr.Err)
		} else if !cr.OK {
			fmt.Printf("!! cell %s#%d FAILED its acceptance check\n", cr.Key, cr.Rep)
		}
	}
}

// writeF3Trace records the Figure 3 replay's JSONL event trace (the
// golden round-trip input of ssmfp-trace -replay).
func writeF3Trace(path string) error {
	_, hdr, events := sim.ExperimentF3Recorded()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WriteJSONL(f, hdr, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("f3 trace: %d events -> %s\n", len(events), path)
	}
	return err
}

// sniffSchema peeks at a report file's "schema" field so compare can
// dispatch between campaign reports and load reports.
func sniffSchema(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var hdr struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &hdr); err != nil {
		return "", fmt.Errorf("%s: %v", path, err)
	}
	return hdr.Schema, nil
}

func compareMain(args []string) int {
	fs := flag.NewFlagSet("ssmfp-bench compare", flag.ExitOnError)
	th := campaign.DefaultThresholds()
	fs.Float64Var(&th.WallPct, "wall-pct", th.WallPct, "wall-clock regression threshold (%%; host-dependent, keep generous)")
	fs.Float64Var(&th.AllocPct, "alloc-pct", th.AllocPct, "allocation-count regression threshold (%%)")
	fs.Float64Var(&th.GuardPct, "guard-pct", th.GuardPct, "guard-evaluation regression threshold (%%; deterministic)")
	var lth load.Thresholds
	fs.Float64Var(&lth.P99Pct, "p99-pct", 0, "load reports: allowed p99 latency growth (%%; default 75)")
	fs.Float64Var(&lth.RatePct, "rate-pct", 0, "load reports: allowed achieved-rate drop (%%; default 25)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ssmfp-bench compare [flags] BASELINE.json CURRENT.json")
		return 2
	}
	schema, err := sniffSchema(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench compare:", err)
		return 2
	}
	if schema == load.Schema {
		return compareLoad(fs.Arg(0), fs.Arg(1), lth)
	}
	base, err := campaign.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench compare:", err)
		return 2
	}
	cur, err := campaign.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench compare:", err)
		return 2
	}
	r := campaign.Compare(base, cur, th)
	for _, d := range r.Regressions {
		fmt.Printf("REGRESSION %s\n", d)
	}
	for _, id := range r.Missing {
		fmt.Printf("MISSING %s (in baseline, absent from current)\n", id)
	}
	for _, d := range r.Improvements {
		fmt.Printf("improvement %s\n", d)
	}
	for _, id := range r.Added {
		fmt.Printf("added %s (not in baseline)\n", id)
	}
	if !r.Clean() {
		fmt.Printf("compare: %d regression(s), %d missing cell(s)\n", len(r.Regressions), len(r.Missing))
		return 1
	}
	fmt.Printf("compare: clean (%d cells, %d improvement(s), %d added)\n", len(base.Cells), len(r.Improvements), len(r.Added))
	return 0
}

// compareLoad gates a load report against a load baseline.
func compareLoad(basePath, curPath string, th load.Thresholds) int {
	base, err := load.Load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench compare:", err)
		return 2
	}
	cur, err := load.Load(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfp-bench compare:", err)
		return 2
	}
	r := load.Compare(base, cur, th)
	for _, b := range r.Broken {
		fmt.Printf("BROKEN %s\n", b)
	}
	for _, d := range r.Regressions {
		fmt.Printf("REGRESSION %s\n", d)
	}
	for _, d := range r.Improvements {
		fmt.Printf("improvement %s\n", d)
	}
	if !r.Clean() {
		fmt.Printf("compare: %d broken, %d regression(s)\n", len(r.Broken), len(r.Regressions))
		return 1
	}
	fmt.Printf("compare: clean (%d steps, %d improvement(s))\n", len(base.Steps), len(r.Improvements))
	return 0
}
