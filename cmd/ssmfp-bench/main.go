// Command ssmfp-bench regenerates every experiment of the reproduction —
// the figures and propositions of the paper plus the comparison and
// message-passing extensions — and prints their tables (the data recorded
// in EXPERIMENTS.md).
//
// Usage:
//
//	ssmfp-bench [-seed N] [-paranoid] [-experiment all|f1|f2|f3|f4|p4|p5|p6|p7|x1..x6|ra|mc|ep]
//	            [-trace-out f3.jsonl]
//
// -trace-out records the Figure 3 replay (experiment f3) as a JSONL event
// trace; render it with ssmfp-trace -replay.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 2009, "random seed for all experiments")
	which := flag.String("experiment", "all", "experiment to run (all, f1, f2, f3, f4, p4, p5, p6, p7, x1, x2, x3, x4, x5, x6, ra, mc, ep)")
	paranoid := flag.Bool("paranoid", false, "run every engine with the incremental self-check enabled (naive rescan cross-checks each step)")
	traceOut := flag.String("trace-out", "", "write the f3 replay as a JSONL event trace to this file")
	flag.Parse()
	if *paranoid {
		// The engines are constructed deep inside the experiments; the env
		// var is how the default self-check mode reaches all of them.
		os.Setenv("SSMFP_PARANOID", "1")
	}

	failed := false
	run := func(id string, fn func() (fmt.Stringer, bool)) {
		if *which != "all" && *which != id {
			return
		}
		table, ok := fn()
		fmt.Println(table)
		if !ok {
			failed = true
			fmt.Printf("!! experiment %s FAILED its acceptance check\n\n", strings.ToUpper(id))
		}
	}

	run("f1", func() (fmt.Stringer, bool) {
		r := sim.ExperimentF1()
		return r.Table, r.Acyclic && r.AllTrees && r.Components == 5
	})
	run("f2", func() (fmt.Stringer, bool) {
		r := sim.ExperimentF2()
		return r.Table, r.CleanAcyclic && r.CycleLen > 0
	})
	run("f3", func() (fmt.Stringer, bool) {
		r, hdr, events := sim.ExperimentF3Recorded()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = obs.WriteJSONL(f, hdr, events)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ssmfp-bench: trace:", err)
				os.Exit(2)
			}
			fmt.Printf("f3 trace: %d events -> %s\n", len(events), *traceOut)
		}
		fmt.Println("== E-F3: Figure 3 execution replay ==")
		fmt.Println(r.Trace)
		if !r.OK {
			fmt.Println("failures:", strings.Join(r.Failures, "; "))
		}
		return stringer(fmt.Sprintf("deliveries=%d (valid %d, invalid %d), m's color=%d, initial cycle=%v\n",
			r.Deliveries, r.ValidDelivered, r.InvalidDelivered, r.HelloColor, r.CycleInitially)), r.OK
	})
	run("f4", func() (fmt.Stringer, bool) {
		r := sim.ExperimentF4(*seed)
		return r.Table, r.AllTypesHit && r.Consistent
	})
	run("p4", func() (fmt.Stringer, bool) {
		r := sim.ExperimentP4(*seed, nil)
		return r.Table, r.WithinBound
	})
	run("p5", func() (fmt.Stringer, bool) {
		r := sim.ExperimentP5(*seed)
		return r.Table, r.WithinBound
	})
	run("p6", func() (fmt.Stringer, bool) {
		r := sim.ExperimentP6(*seed)
		return r.Table, len(r.Rows) > 0
	})
	run("p7", func() (fmt.Stringer, bool) {
		r := sim.ExperimentP7(*seed, nil)
		fmt.Printf("amortized-vs-D linear fit: slope=%.3f intercept=%.3f R²=%.3f\n",
			r.Fit.Slope, r.Fit.Intercept, r.Fit.R2)
		return r.Table, r.Within
	})
	run("x1", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX1(*seed)
		return r.Table, r.SSMFPOK
	})
	run("x2", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX2(*seed)
		return r.Table, r.MaxOverhead < 8
	})
	run("x3", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX3(*seed)
		return r.Table, r.AllOK
	})
	run("x4", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX4(*seed)
		return r.Table, r.AllOK
	})
	run("x5", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX5(*seed)
		ok := true
		for _, row := range r.Rows {
			if !row.AllDelivered {
				ok = false
			}
		}
		return r.Table, ok
	})
	run("x6", func() (fmt.Stringer, bool) {
		r := sim.ExperimentX6(*seed)
		return r.Table, r.AllOK
	})
	run("ra", func() (fmt.Stringer, bool) {
		r := sim.ExperimentRA(*seed)
		return r.Table, r.Tracks
	})
	run("mc", func() (fmt.Stringer, bool) {
		r := sim.ExperimentMC()
		return r.Table, r.AllOK
	})
	run("ep", func() (fmt.Stringer, bool) {
		r := sim.ExperimentEnginePerf(*seed)
		ok := r.AllMatch
		for _, row := range r.Rows {
			if row.Topology == "grid 20x20" && row.Ratio < 3 {
				ok = false
			}
		}
		return r.Table, ok
	})

	if failed {
		os.Exit(1)
	}
}

type stringer string

func (s stringer) String() string { return string(s) }
