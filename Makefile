# Convenience targets for the SSMFP reproduction.

GO ?= go

.PHONY: all build test test-short race bench experiments check examples cover fmt vet

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/ssmfp-bench

check:
	$(GO) run ./cmd/ssmfp-check -scenario clean
	$(GO) run ./cmd/ssmfp-check -scenario same-payload
	$(GO) run ./cmd/ssmfp-check -scenario figure3
	$(GO) run ./cmd/ssmfp-check -scenario figure3 -simultaneity 2
	$(GO) run ./cmd/ssmfp-check -scenario r5-literal

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure3
	$(GO) run ./examples/gridflood
	$(GO) run ./examples/msgpass
	$(GO) run ./examples/rpc
	$(GO) run ./examples/faultstorm

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
