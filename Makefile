# Convenience targets for the SSMFP reproduction.

GO ?= go

# Coverage floor enforced by `make cover-check` (CI satellite): total
# statement coverage must not drop below this. Raise it when coverage
# grows; never lower it to make a PR pass.
COVER_FLOOR ?= 74.0

# Canonical flags of the checked-in benchmark baseline (BENCH_baseline.json).
# PR benches and baseline refreshes must use the same cell selection.
BENCH_FLAGS ?= -quick -seeds 2 -parallel 1

.PHONY: all build test test-short race bench experiments check cluster examples \
	cover cover-check fmt lint vet fuzz campaign bench-baseline load-smoke

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/ssmfp-bench

check:
	$(GO) run ./cmd/ssmfp-check -scenario clean
	$(GO) run ./cmd/ssmfp-check -scenario same-payload
	$(GO) run ./cmd/ssmfp-check -scenario figure3
	$(GO) run ./cmd/ssmfp-check -scenario figure3 -simultaneity 2
	$(GO) run ./cmd/ssmfp-check -scenario r5-literal

# 5 OS processes, one ring processor each, loopback TCP under chaos
# (loss, duplication, jitter, a partition/heal cycle straddled by the
# sends); exits nonzero on any lost, duplicated or misdelivered message.
cluster:
	$(GO) run ./cmd/ssmfp-node -spawn 5 -topology ring -messages 30 -seed 7 \
		-loss 0.10 -dup 0.10 -latency 200us -jitter 1ms \
		-partition 400ms:600ms:0-1 -send-spread 1500ms -timeout 60s > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure3
	$(GO) run ./examples/gridflood
	$(GO) run ./examples/msgpass
	$(GO) run ./examples/chaos
	$(GO) run ./examples/rpc
	$(GO) run ./examples/faultstorm

# Full parallel experiment campaign with a machine-readable report.
campaign:
	$(GO) run ./cmd/ssmfp-bench -progress -json BENCH_local.json

# Refresh the checked-in benchmark baseline. Run on a quiet machine;
# wall-clock numbers are host-dependent (CI compares them generously,
# guard evaluations strictly).
bench-baseline:
	$(GO) run ./cmd/ssmfp-bench $(BENCH_FLAGS) -json BENCH_baseline.json

# ~10s open-loop load smoke on a 3x3 grid: exits nonzero if any message
# is lost, duplicated or misdelivered, or if the latency histogram comes
# back empty. Gates the load subsystem end to end in tier-2 CI.
load-smoke:
	$(GO) run ./cmd/ssmfp-load -topology grid -rows 3 -cols 3 \
		-rate 2000 -messages 20000 -seed 42 -drain-timeout 30s -json /tmp/load-smoke.json
	$(GO) run ./cmd/ssmfp-bench compare /tmp/load-smoke.json /tmp/load-smoke.json

# Non-blocking fuzz pass over the transport frame codec (seeds committed
# under internal/transport/testdata/fuzz).
fuzz:
	$(GO) test -fuzz=FuzzFrameCodec -fuzztime=30s -run '^$$' ./internal/transport/

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Fail when total statement coverage drops below COVER_FLOOR.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

fmt:
	gofmt -w .

# Lint gate: formatting diffs fail the build; staticcheck runs when
# installed (CI installs a pinned version; the container may not have it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipped"; fi

vet:
	$(GO) vet ./...
