# Convenience targets for the SSMFP reproduction.

GO ?= go

# Coverage floor enforced by `make cover-check` (CI satellite): total
# statement coverage must not drop below this. Raise it when coverage
# grows; never lower it to make a PR pass.
COVER_FLOOR ?= 76.5

# Canonical flags of the checked-in benchmark baseline (BENCH_baseline.json).
# PR benches and baseline refreshes must use the same cell selection.
BENCH_FLAGS ?= -quick -seeds 2 -parallel 1

.PHONY: all build test test-short race bench experiments check cluster examples \
	cover cover-check fmt lint vet fuzz campaign bench-baseline load-smoke \
	bench-allocs load-baseline load-compare cluster-metrics cluster-elastic \
	engine-parallel cluster-tls

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmarks the zero-allocation gate covers: the sender-side
# wire handoff, the full receiver-side delivery path, and the telemetry
# registry's counter/gauge/histogram update path.
ALLOC_BENCHES ?= BenchmarkSendHotPathParallel|BenchmarkDeliveryHotPath|BenchmarkTelemetryHotPath

# Zero-allocation gate (tier-1 CI): the live-network hot-path benchmarks
# must report exactly 0 allocs/op. Any regression — a payload copy, an
# event built outside the Active() guard, a pooled buffer dropped on the
# floor — fails this target before it can blunt the saturation knee.
bench-allocs:
	@out=$$($(GO) test -run '^$$' -bench '$(ALLOC_BENCHES)' -benchmem -benchtime 2000x ./internal/msgpass/ ./internal/telemetry/); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	echo "$$out" | awk '/allocs\/op/ { if ($$(NF-1)+0 > 0) { bad=1; print "FAIL: " $$1 " reports " $$(NF-1) " allocs/op, want 0" } } \
		END { if (bad) exit 1; print "bench-allocs: all hot-path benchmarks at 0 allocs/op" }'

experiments:
	$(GO) run ./cmd/ssmfp-bench

check:
	$(GO) run ./cmd/ssmfp-check -scenario clean
	$(GO) run ./cmd/ssmfp-check -scenario same-payload
	$(GO) run ./cmd/ssmfp-check -scenario figure3
	$(GO) run ./cmd/ssmfp-check -scenario figure3 -simultaneity 2
	$(GO) run ./cmd/ssmfp-check -scenario r5-literal

# 5 OS processes, one ring processor each, loopback TCP under chaos
# (loss, duplication, jitter, a partition/heal cycle straddled by the
# sends); exits nonzero on any lost, duplicated or misdelivered message.
cluster:
	$(GO) run ./cmd/ssmfp-node -spawn 5 -topology ring -messages 30 -seed 7 \
		-loss 0.10 -dup 0.10 -latency 200us -jitter 1ms \
		-partition 400ms:600ms:0-1 -send-spread 1500ms -timeout 60s > /dev/null

# Live-scrape check: a 3-node cluster on stable metrics ports, scraped
# from outside while it runs — curl must get parseable Prometheus text
# with the protocol series, and `ssmfp-node -scrape -scrape-validate`
# must aggregate all three nodes and pass the stabilization-health
# checks. Exercises the telemetry plane end to end across processes.
CLUSTER_METRICS_PORT ?= 19300
cluster-metrics:
	$(GO) build -o /tmp/ssmfp-node-metrics ./cmd/ssmfp-node
	/tmp/ssmfp-node-metrics -spawn 3 -topology ring -messages 300 -rate 50 \
		-seed 7 -http-base $(CLUSTER_METRICS_PORT) -timeout 60s > /dev/null & \
	pid=$$!; \
	ok=0; for i in $$(seq 1 100); do \
		if curl -sf http://127.0.0.1:$$(( $(CLUSTER_METRICS_PORT) + 1 ))/metrics > /tmp/cluster-node1.metrics 2>/dev/null; then ok=1; break; fi; \
		sleep 0.2; done; \
	if [ $$ok -ne 1 ]; then echo "FAIL: node 1 /metrics never answered"; kill $$pid 2>/dev/null; exit 1; fi; \
	for series in ssmfp_frames_sent_total ssmfp_buf_occupancy ssmfp_sends_total ssmfp_wire_frames_sent_total; do \
		grep -q "$$series" /tmp/cluster-node1.metrics || { echo "FAIL: scrape missing $$series"; kill $$pid 2>/dev/null; exit 1; }; done; \
	/tmp/ssmfp-node-metrics -scrape 127.0.0.1:$(CLUSTER_METRICS_PORT),127.0.0.1:$$(( $(CLUSTER_METRICS_PORT) + 1 )),127.0.0.1:$$(( $(CLUSTER_METRICS_PORT) + 2 )) \
		-scrape-validate || { kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid

# Tier 2: the elastic-membership churn judge plus the cluster control
# plane under the race detector. The judge forks a 4-node -serve ring on
# loopback TCP, then — under sustained injected load — joins two nodes,
# gracefully cuts a link, and drains a member until its process exits on
# the detach epoch; it exits nonzero unless every injected message was
# delivered exactly once across all membership changes.
cluster-elastic:
	$(GO) test -race ./internal/cluster/
	$(GO) run ./cmd/ssmfp-node -elastic -spawn 4 -seed 11 -timeout 60s > /dev/null

# Tier 2: the secure transport under the race detector, then the full
# byzantine-injection judge — a mutual-TLS 3-node ring under paced load,
# struck with forged, replayed and role-violating frames from rogue
# certificates; exits nonzero unless exactly-once holds AND every
# injected frame is balanced against the right rejection counter. A
# plain TLS cluster (no rogue) must also pass with zero rejections.
cluster-tls:
	$(GO) test -race ./internal/secure/
	$(GO) run ./cmd/ssmfp-node -spawn 3 -topology ring -require-tls \
		-messages 30 -rate 100 -seed 7 -timeout 60s > /dev/null
	$(GO) run ./cmd/ssmfp-node -byzantine -spawn 3 -topology ring \
		-messages 30 -rate 100 -burst 5 -seed 7 -timeout 60s > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure3
	$(GO) run ./examples/gridflood
	$(GO) run ./examples/msgpass
	$(GO) run ./examples/chaos
	$(GO) run ./examples/rpc
	$(GO) run ./examples/faultstorm

# Full parallel experiment campaign with a machine-readable report.
campaign:
	$(GO) run ./cmd/ssmfp-bench -progress -json BENCH_local.json

# Refresh the checked-in benchmark baseline. Run on a quiet machine;
# wall-clock numbers are host-dependent (CI compares them generously,
# guard evaluations strictly).
bench-baseline:
	$(GO) run ./cmd/ssmfp-bench $(BENCH_FLAGS) -json BENCH_baseline.json

# Canonical sweep of the checked-in load baseline (LOAD_baseline.json):
# the grid-4x4 saturation ladder, capped at the rung where goodput is
# still stable run-to-run (past the knee, achieved rate flaps too much on
# a shared box to gate on). Baseline refreshes and comparisons must use
# the same flags.
LOAD_SWEEP_FLAGS ?= -topology grid -rows 4 -cols 4 -sweep -sweep-start 8000 \
	-sweep-factor 2 -sweep-steps 4 -messages 4000 -seed 3

# Refresh the checked-in load baseline. Run on a quiet machine; achieved
# rates are host-dependent.
load-baseline:
	$(GO) run ./cmd/ssmfp-load $(LOAD_SWEEP_FLAGS) -json LOAD_baseline.json

# Sweep the current tree and gate it against the checked-in baseline.
# p99 in the low-millisecond range flaps ~2x with scheduler noise on a
# 1-CPU container, so the latency threshold is loosened; the meaningful
# gates are achieved rate, knee rung, and the exactly-once verdict.
load-compare:
	$(GO) run ./cmd/ssmfp-load $(LOAD_SWEEP_FLAGS) -json /tmp/load_current.json
	$(GO) run ./cmd/ssmfp-bench compare -p99-pct 200 LOAD_baseline.json /tmp/load_current.json

# ~10s open-loop load smoke on a 3x3 grid: exits nonzero if any message
# is lost, duplicated or misdelivered, or if the latency histogram comes
# back empty. Gates the load subsystem end to end in tier-2 CI.
load-smoke:
	$(GO) run ./cmd/ssmfp-load -topology grid -rows 3 -cols 3 \
		-rate 2000 -messages 20000 -seed 42 -drain-timeout 30s -json /tmp/load-smoke.json
	$(GO) run ./cmd/ssmfp-bench compare /tmp/load-smoke.json /tmp/load-smoke.json

# Fuzz pass over every fuzz target: the transport frame codec, the
# load-trace tag parser, and the certificate role-extension decoder
# (seeds committed under each package's testdata/fuzz). FUZZTIME is per
# target; the nightly workflow raises it.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzFrameCodec -fuzztime=$(FUZZTIME) -run '^$$' ./internal/transport/
	$(GO) test -fuzz=FuzzParseTag -fuzztime=$(FUZZTIME) -run '^$$' ./internal/load/
	$(GO) test -fuzz=FuzzCertRoleParse -fuzztime=$(FUZZTIME) -run '^$$' ./internal/secure/

# Sharded-engine determinism gate: the engine's oracles under the race
# detector, then the full quick E-EP grid at -shards 1, 2 and 4 — the
# three normalized campaign reports must be byte-identical (the
# shard-count-invariance contract of statemodel.WithShards).
engine-parallel:
	$(GO) test -race ./internal/statemodel/
	@for s in 1 2 4; do \
		$(GO) run ./cmd/ssmfp-bench -quick -seeds 2 -parallel 2 -shards $$s \
			-filter ep -json /tmp/engine-shards-$$s.json -normalize > /dev/null || exit 1; \
	done; \
	cmp /tmp/engine-shards-1.json /tmp/engine-shards-2.json || { echo "FAIL: -shards 2 report differs from -shards 1"; exit 1; }; \
	cmp /tmp/engine-shards-1.json /tmp/engine-shards-4.json || { echo "FAIL: -shards 4 report differs from -shards 1"; exit 1; }; \
	echo "engine-parallel: normalized E-EP reports byte-identical at -shards 1/2/4"

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Fail when total statement coverage drops below COVER_FLOOR.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

fmt:
	gofmt -w .

# Lint gate: formatting diffs fail the build; staticcheck runs when
# installed (CI installs a pinned version; the container may not have it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipped"; fi

vet:
	$(GO) vet ./...
