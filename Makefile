# Convenience targets for the SSMFP reproduction.

GO ?= go

.PHONY: all build test test-short race bench experiments check cluster examples cover fmt vet

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/ssmfp-bench

check:
	$(GO) run ./cmd/ssmfp-check -scenario clean
	$(GO) run ./cmd/ssmfp-check -scenario same-payload
	$(GO) run ./cmd/ssmfp-check -scenario figure3
	$(GO) run ./cmd/ssmfp-check -scenario figure3 -simultaneity 2
	$(GO) run ./cmd/ssmfp-check -scenario r5-literal

# 5 OS processes, one ring processor each, loopback TCP under chaos
# (loss, duplication, jitter, a partition/heal cycle straddled by the
# sends); exits nonzero on any lost, duplicated or misdelivered message.
cluster:
	$(GO) run ./cmd/ssmfp-node -spawn 5 -topology ring -messages 30 -seed 7 \
		-loss 0.10 -dup 0.10 -latency 200us -jitter 1ms \
		-partition 400ms:600ms:0-1 -send-spread 1500ms -timeout 60s > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure3
	$(GO) run ./examples/gridflood
	$(GO) run ./examples/msgpass
	$(GO) run ./examples/chaos
	$(GO) run ./examples/rpc
	$(GO) run ./examples/faultstorm

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
