package ssmfp

import (
	"fmt"
	"math/rand"
	"strings"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// Network is a state-model deployment of SSMFP composed with the
// self-stabilizing routing algorithm A: the exact system the paper proves
// snap-stabilizing. Create one with NewNetwork, inject traffic with Send,
// and drive it with Step or Run; the built-in oracle verifies
// Specification SP (exactly-once delivery of every generated message) as
// the execution unfolds.
type Network struct {
	g       *graph.Graph
	engine  *sm.Engine
	tracker *checker.Tracker
	opts    options
	ran     bool
}

type options struct {
	seed        int64
	daemonKind  string
	corrupt     *core.CorruptOptions
	maxSteps    int
	policy      core.ChoicePolicy
	subscribers []func(Delivery)
}

// Option configures NewNetwork.
type Option func(*options)

// WithSeed fixes the randomness of daemon and corruption (default 1).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithDaemon selects the scheduler: "synchronous" (default),
// "central-random", "central-round-robin", "distributed", or
// "weakly-fair-lifo" (the adversarial-but-fair daemon of the proofs).
func WithDaemon(kind string) Option { return func(o *options) { o.daemonKind = kind } }

// WithCorruptStart starts from a fully adversarial initial configuration:
// corrupted routing tables, invalid messages in buffers, scrambled
// queues and phantom requests — the snap-stabilization starting point.
func WithCorruptStart(seed int64) Option {
	return func(o *options) {
		o.seed = seed
		c := core.DefaultCorrupt
		o.corrupt = &c
	}
}

// WithMaxSteps caps Run (default 10 million steps).
func WithMaxSteps(n int) Option { return func(o *options) { o.maxSteps = n } }

// WithChoicePolicy selects the implementation of the choice_p(d) fairness
// macro: "fifo-queue" (the paper's scheme, default), "rotating" (round
// robin, also fair), or "lowest-id" (unfair — starves under sustained
// load; provided for the E-X5 ablation).
func WithChoicePolicy(name string) Option {
	return func(o *options) {
		switch name {
		case "fifo-queue":
			o.policy = core.PolicyQueue
		case "rotating":
			o.policy = core.PolicyRotating
		case "lowest-id":
			o.policy = core.PolicyLowestID
		default:
			panic(fmt.Sprintf("ssmfp: unknown choice policy %q (want fifo-queue, rotating, or lowest-id)", name))
		}
	}
}

// Delivery is one message handed to the higher layer at its destination.
type Delivery struct {
	Payload string
	From    ProcessID
	To      ProcessID
	Valid   bool // false for garbage present in the initial configuration
	Step    int
	Round   int
}

// OnDeliver registers a callback invoked at every delivery.
func WithDeliveryHandler(fn func(Delivery)) Option {
	return func(o *options) { o.subscribers = append(o.subscribers, fn) }
}

// NewNetwork builds the composed system on t.
func NewNetwork(t *Topology, opts ...Option) *Network {
	o := options{seed: 1, daemonKind: "synchronous", maxSteps: 10_000_000}
	for _, fn := range opts {
		fn(&o)
	}
	var cfg []sm.State
	if o.corrupt != nil {
		cfg = core.RandomConfig(t, rand.New(rand.NewSource(o.seed)), *o.corrupt)
	} else {
		cfg = core.CleanConfig(t)
	}
	n := &Network{g: t, opts: o}
	n.engine = sm.NewEngine(t, core.FullProgramWithPolicy(t, o.policy), newDaemon(o.daemonKind, o.seed, t.N()), cfg)
	n.tracker = checker.New(t)
	n.tracker.RecordInitial(cfg)
	n.tracker.Attach(n.engine)
	if len(o.subscribers) > 0 {
		n.engine.Subscribe(func(ev sm.Event) {
			if ev.Kind != core.KindDeliver {
				return
			}
			msg := ev.Payload.(core.DeliverEvent).Msg
			d := Delivery{Payload: msg.Payload, From: msg.Src, To: ev.Process,
				Valid: msg.Valid, Step: ev.Step, Round: n.engine.Rounds()}
			for _, fn := range o.subscribers {
				fn(d)
			}
		})
	}
	return n
}

func newDaemon(kind string, seed int64, n int) sm.Daemon {
	switch kind {
	case "synchronous":
		return daemon.NewSynchronous(seed)
	case "central-random":
		return daemon.NewCentralRandom(seed)
	case "central-round-robin":
		return daemon.NewCentralRoundRobin()
	case "distributed":
		return daemon.NewDistributedRandom(seed, 0.5)
	case "weakly-fair-lifo":
		return daemon.NewWeaklyFair(daemon.NewCentralLIFO(), 4*n)
	default:
		panic(fmt.Sprintf("ssmfp: unknown daemon %q (want synchronous, central-random, central-round-robin, distributed, or weakly-fair-lifo)", kind))
	}
}

// Send registers a higher-layer send request at src. It may be called
// before or between steps — the paper's request-bit interface accepts new
// messages at any time, including while routing tables are still corrupt.
func (n *Network) Send(src, dst ProcessID, payload string) {
	n.checkID(src)
	n.checkID(dst)
	n.engine.StateOf(src).(*core.Node).FW.Enqueue(payload, dst)
}

func (n *Network) checkID(p ProcessID) {
	if p < 0 || int(p) >= n.g.N() {
		panic(fmt.Sprintf("ssmfp: processor %d out of range [0,%d)", p, n.g.N()))
	}
}

// Step executes one atomic step of the state model; it returns false on a
// terminal configuration.
func (n *Network) Step() bool { return n.engine.Step() }

// Run drives the system until it is quiescent (every message delivered,
// all buffers empty, routing silent) or the step cap is hit, and returns
// the report.
func (n *Network) Run() Report {
	n.engine.Run(n.opts.maxSteps, nil)
	n.ran = true
	return n.Report()
}

// Report summarizes the execution so far at any point.
func (n *Network) Report() Report {
	r := Report{
		Steps:            n.engine.Steps(),
		Rounds:           n.engine.Rounds(),
		Quiescent:        n.engine.Terminal(),
		Generated:        n.tracker.GeneratedCount(),
		Delivered:        n.tracker.DeliveredValid(),
		InvalidDelivered: n.tracker.InvalidDeliveredTotal(),
		Compromised:      n.tracker.Compromised(),
		Violations:       n.tracker.Violations(),
	}
	for _, uid := range n.tracker.UndeliveredValid() {
		_ = uid
		r.Undelivered++
	}
	return r
}

// Deliveries lists every delivery so far, in order.
func (n *Network) Deliveries() []Delivery {
	var out []Delivery
	for _, d := range n.tracker.Deliveries() {
		out = append(out, Delivery{
			Payload: d.Msg.Payload, From: d.Msg.Src, To: d.At,
			Valid: d.Msg.Valid, Step: d.Step, Round: d.Round,
		})
	}
	return out
}

// Report is the outcome summary of a Network execution.
type Report struct {
	Steps            int
	Rounds           int
	Quiescent        bool
	Generated        int // messages accepted from the higher layer (R1)
	Delivered        int // distinct valid messages delivered
	Undelivered      int // generated but not delivered (0 on a finished run)
	InvalidDelivered int // initial-configuration garbage handed up (≤ 2n per destination)
	Compromised      int // messages exempted because an injected fault touched them
	Violations       []string
}

// OK reports whether Specification SP held: the system is quiescent, no
// violation (loss, duplication, misdelivery) was observed, and every
// generated message not exempted by an injected fault was delivered.
func (r Report) OK() bool {
	return r.Quiescent && len(r.Violations) == 0 && r.Undelivered == 0 &&
		r.Delivered+r.Compromised >= r.Generated
}

// String renders a human-readable summary.
func (r Report) String() string {
	var sb strings.Builder
	status := "SP satisfied"
	if !r.OK() {
		status = "SP VIOLATED"
	}
	fmt.Fprintf(&sb, "%s: %d/%d valid messages delivered exactly once in %d steps (%d rounds)",
		status, r.Delivered, r.Generated, r.Steps, r.Rounds)
	if r.InvalidDelivered > 0 {
		fmt.Fprintf(&sb, "; %d invalid initial messages surfaced", r.InvalidDelivered)
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(&sb, "; violations: %s", strings.Join(r.Violations, "; "))
	}
	return sb.String()
}
