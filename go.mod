module ssmfp

go 1.22
