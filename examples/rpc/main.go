// RPC: a request/response layer on top of the snap-stabilizing
// point-to-point service — the kind of application the paper's
// introduction motivates ("processors may need to exchange messages with
// any processor of the network").
//
// Client processors issue requests to a server processor; every request
// and every response is a point-to-point message carried by SSMFP.
// Because the transport is snap-stabilizing and exactly-once for valid
// messages, the RPC layer needs no retries, no dedup, and no warm-up: it
// works immediately even though the network starts with corrupted routing
// tables and garbage in its buffers. (The one thing the paper warns about
// — a delivered message may be initial garbage, indistinguishable by the
// receiver — surfaces here as requests that fail to parse; the layer just
// discards them, as §4's discussion anticipates.)
//
//	go run ./examples/rpc
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"ssmfp"
)

const server = ssmfp.ProcessID(4) // center of the star topology

// request payloads look like "rpc:<client>:<id>:square:<x>"; responses
// like "rsp:<id>:<x²>". Initial garbage will not parse and is dropped.
func main() {
	topo := ssmfp.Star(9)
	var net *ssmfp.Network

	type pending struct{ client ssmfp.ProcessID }
	outstanding := map[string]pending{}
	responses := map[string]int{}

	handle := func(d ssmfp.Delivery) {
		fields := strings.Split(d.Payload, ":")
		switch {
		case d.To == server && len(fields) == 5 && fields[0] == "rpc" && fields[3] == "square":
			// Server side: compute and respond.
			client, err1 := strconv.Atoi(fields[1])
			x, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil {
				fmt.Printf("  server: discarding malformed request %q\n", d.Payload)
				return
			}
			net.Send(server, ssmfp.ProcessID(client), fmt.Sprintf("rsp:%s:%d", fields[2], x*x))
		case len(fields) == 3 && fields[0] == "rsp":
			// Client side: record the response.
			id := fields[1]
			if _, ok := outstanding[id]; !ok {
				fmt.Printf("  client %d: discarding unexpected response %q\n", d.To, d.Payload)
				return
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return
			}
			responses[id] = v
			delete(outstanding, id)
		default:
			// Initial-configuration garbage surfacing at some processor:
			// indistinguishable from a valid message by the protocol (the
			// paper's §4 remark), but it fails to parse as RPC traffic.
			fmt.Printf("  %d: discarding non-RPC delivery %q (initial garbage)\n", d.To, d.Payload)
		}
	}

	net = ssmfp.NewNetwork(topo,
		ssmfp.WithCorruptStart(99),
		ssmfp.WithDaemon("central-random"),
		ssmfp.WithDeliveryHandler(handle))

	fmt.Println("issuing square(x) RPCs from every client to the server at", server)
	want := map[string]int{}
	for client := ssmfp.ProcessID(0); client < 9; client++ {
		if client == server {
			continue
		}
		id := fmt.Sprintf("req-%d", client)
		outstanding[id] = pending{client: client}
		want[id] = int(client) * int(client)
		net.Send(client, server, fmt.Sprintf("rpc:%d:%s:square:%d", client, id, client))
	}

	report := net.Run()
	if !report.OK() {
		log.Fatalf("transport violated SP: %s", report)
	}
	if len(outstanding) != 0 {
		log.Fatalf("unanswered requests: %v", outstanding)
	}
	for id, got := range responses {
		if got != want[id] {
			log.Fatalf("%s: got %d, want %d", id, got, want[id])
		}
	}
	fmt.Printf("\nall %d RPCs answered correctly over the corrupted-start network\n", len(responses))
	fmt.Println(report)
}
