// Msgpass: the protocol on a "real" asynchronous network — goroutines and
// channels instead of the shared-memory state model.
//
// A 3×4 torus-free grid starts with corrupted routing state and garbage in
// buffers; links drop 15% of all frames. Every processor sends to its
// antipode. The offer/accept/cancel hop handshake keeps every transfer
// exactly-once while the distance-vector gossip repairs the routes, so all
// messages arrive exactly once despite loss, reordering, and corruption —
// the engineering answer to the paper's closing open problem.
//
//	go run ./examples/msgpass
package main

import (
	"fmt"
	"log"
	"time"

	"ssmfp"
)

func main() {
	live := ssmfp.NewLiveNetwork(ssmfp.Grid(3, 4), ssmfp.LiveOptions{
		Seed:         11,
		LossRate:     0.15,
		CorruptStart: true,
	})
	defer live.Close()

	n := ssmfp.ProcessID(12)
	var ids []uint64
	for p := ssmfp.ProcessID(0); p < n; p++ {
		uid, err := live.Send(p, (p+6)%n, fmt.Sprintf("live-%d", p))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, uid)
	}
	fmt.Printf("sent %d messages over lossy asynchronous links (15%% frame loss)...\n", len(ids))

	start := time.Now()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !live.DeliveredExactlyOnce(ids...) {
		time.Sleep(time.Millisecond)
	}
	if !live.DeliveredExactlyOnce(ids...) {
		log.Fatal("not all messages delivered exactly once in time")
	}
	fmt.Printf("all %d delivered exactly once in %v\n", len(ids), time.Since(start).Round(time.Millisecond))

	valid, invalid := 0, 0
	for _, d := range live.Deliveries() {
		if d.Valid {
			valid++
		} else {
			invalid++
		}
	}
	fmt.Printf("deliveries: %d valid, %d pieces of initial garbage surfaced\n", valid, invalid)
}
