// Gridflood: heavy mixed traffic on a mesh, with the metrics the paper's
// complexity analysis talks about.
//
// A 4×4 grid starts from a corrupted configuration and faces a hot-spot
// workload (everyone hammers processor 0) layered over random background
// pairs. The run reports routing stabilization time R_A, per-rule move
// counts, the latency distribution in rounds, and the amortized rounds per
// delivery that Proposition 7 bounds by O(max(R_A, D)).
//
//	go run ./examples/gridflood
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/sim"
	"ssmfp/internal/workload"
)

func main() {
	const seed = 7
	g := graph.Grid(4, 4)
	rng := rand.New(rand.NewSource(seed))
	w := workload.HotSpot(g, 0, 2, rng)

	fmt.Printf("network: %v, workload: %d sends (hot-spot on 0 + background)\n", g, len(w))
	r := sim.Run(sim.Scenario{
		Name:     "gridflood",
		Graph:    g,
		Corrupt:  &core.DefaultCorrupt,
		Daemon:   sim.Distributed,
		Seed:     seed,
		Workload: w,
	})
	if !r.OK() {
		log.Fatalf("SP violated: %v (lost %d)", r.Violations, len(r.Lost))
	}

	fmt.Printf("steps %d, rounds %d; routing silent after %d rounds\n",
		r.Steps, r.Rounds, r.RoutingRounds)
	fmt.Printf("delivered: %d valid (exactly once) + %d invalid leftovers\n\n",
		r.DeliveredValid, r.InvalidDelivered)

	t := metrics.NewTable("moves by rule", "rule", "count", "per delivery")
	var rules []string
	for rule := range r.MovesByRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	total := r.DeliveredValid + r.InvalidDelivered
	for _, rule := range rules {
		t.AddRow(rule, r.MovesByRule[rule], float64(r.MovesByRule[rule])/float64(total))
	}
	fmt.Print(t)

	fmt.Printf("\nlatency (rounds): mean %.1f  p50 %.0f  p90 %.0f  max %.0f\n",
		r.LatencyRounds.Mean, r.LatencyRounds.P50, r.LatencyRounds.P90, r.LatencyRounds.Max)
	amortized := float64(r.Rounds) / float64(total)
	fmt.Printf("amortized rounds per delivery: %.2f   (Prop. 7 reference 3·D = %d)\n",
		amortized, 3*g.Diameter())

	var lats []float64
	for _, round := range r.DeliveryRounds {
		lats = append(lats, float64(round))
	}
	fmt.Println("\ndelivery rounds histogram:")
	fmt.Print(metrics.NewHistogram(lats, 8).Render(44))
}
