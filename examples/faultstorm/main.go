// Faultstorm: snap-stabilization under repeated mid-run transient faults.
//
// A 3×3 grid carries continuous traffic while waves of transient faults
// strike live state: routing tables scrambled, in-flight messages dropped,
// overwritten, cloned or recolored, queues shuffled, request bits flipped.
// Messages that a fault could have touched are exempted (the fault made
// them "invalid" in the paper's sense); everything generated after the
// last strike must still be delivered exactly once — which is what
// snap-stabilization means when faults happen mid-run instead of at a
// corrupted time zero.
//
//	go run ./examples/faultstorm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/faults"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

func main() {
	const seed = 4
	rng := rand.New(rand.NewSource(seed))
	g := graph.Grid(3, 3)
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(seed), cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	injector := faults.NewInjector(g, seed, nil)

	fmt.Printf("network %v under a storm of transient faults\n\n", g)
	for wave := 1; wave <= 5; wave++ {
		for k := 0; k < 4; k++ {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("wave%d-msg%d", wave, k), dst)
		}
		for i := 0; i < 15; i++ {
			e.Step()
		}
		inFlight := faults.InFlightValid(e, g)
		tr.MarkCompromised(inFlight...)
		tr.MarkCompromised(injector.Strike(e, 4)...)
		faults.RearmRequests(e, g)
		fmt.Printf("wave %d: struck 4 faults at step %d; %d messages were in flight (exempted)\n",
			wave, e.Steps(), len(inFlight))
	}

	fmt.Println("\nfinal wave of guaranteed traffic after the last fault:")
	for k := 0; k < 5; k++ {
		src := graph.ProcessID(rng.Intn(g.N()))
		dst := graph.ProcessID(rng.Intn(g.N()))
		e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("guaranteed-%d", k), dst)
	}
	if _, terminal := e.Run(4_000_000, nil); !terminal {
		log.Fatal("system did not quiesce")
	}

	fmt.Printf("\ngenerated %d messages total, %d compromised by faults\n",
		tr.GeneratedCount(), tr.Compromised())
	if v := tr.Violations(); len(v) > 0 {
		log.Fatalf("violations: %v", v)
	}
	if !tr.AllValidDelivered() {
		log.Fatalf("undelivered guaranteed messages: %v", tr.UndeliveredValid())
	}
	fmt.Println("every non-compromised message delivered exactly once — SP holds through the storm")
}
