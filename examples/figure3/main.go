// Figure 3 replay: the paper's worked execution example, frame by frame.
//
// The scenario reconstructs Figure 3 of the paper on the 4-processor
// network a, b, c, e (Δ = 3, so colors range over {0,1,2,3}): the routing
// tables start with a cycle between a and c for destination b, an invalid
// message with color 0 squats in b's reception buffer, and c sends two
// messages — the second sharing its payload with the invalid one. The
// scripted daemon drives the exact rule sequence; the color flag keeps the
// equal-payload messages apart, the routing algorithm repairs the tables
// mid-flight, and all three messages are delivered (the valid ones exactly
// once).
//
//	go run ./examples/figure3
package main

import (
	"fmt"
	"log"

	"ssmfp/internal/sim"
)

func main() {
	fmt.Println("Replaying the paper's Figure 3 on the reconstructed network:")
	fmt.Println("  edges a-b, a-c, a-e, b-c; destination b; a↔c routing cycle;")
	fmt.Println("  invalid (data, color 0) in bufR_b; c sends \"hello\" then \"data\".")
	fmt.Println()

	r := sim.ExperimentF3()
	fmt.Print(r.Trace)

	if !r.OK {
		for _, f := range r.Failures {
			fmt.Println("FAILURE:", f)
		}
		log.Fatal("replay diverged from the expected execution")
	}
	fmt.Println("replay verdict:")
	fmt.Printf("  initial buffer-graph cycle present : %v\n", r.CycleInitially)
	fmt.Printf("  m's color on entering bufE_c       : %d (0 was taken by the invalid)\n", r.HelloColor)
	fmt.Printf("  deliveries                         : %d (%d valid exactly once, %d invalid)\n",
		r.Deliveries, r.ValidDelivered, r.InvalidDelivered)
}
