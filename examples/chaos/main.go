// Chaos: the protocol riding out a network partition.
//
// A 5-ring runs over the chaos transport: 10% loss, duplication, 1ms
// jitter — and a scheduled partition that cuts both links of processor 0
// mid-run, isolating it completely for half a second. Messages addressed
// to and from the isolated node cannot move while the cut holds; the
// offer/accept handshake just keeps retransmitting into the void. The
// moment the partition heals, the pending offers land and every message
// is delivered exactly once — no protocol-level recovery action is
// needed, because snap-stabilization never depended on the wire being
// reliable in the first place.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
	"ssmfp/internal/transport"
)

func main() {
	g := graph.Ring(5)
	cut := transport.PartitionWindow{
		Start:    100 * time.Millisecond,
		Duration: 500 * time.Millisecond,
		Edges:    [][2]graph.ProcessID{{0, 1}, {0, 4}}, // isolate processor 0
	}

	bus := obs.NewBus()
	bus.Subscribe(func(ev obs.Event) {
		if ev.Kind == obs.KindWire {
			fmt.Printf("  wire: %s %d-%d\n", ev.Detail, ev.From, ev.To)
		}
	})

	tr := transport.NewChaos(transport.NewChan(g, 64), transport.ChaosOptions{
		Seed:       42,
		LossRate:   0.10,
		DupRate:    0.10,
		Jitter:     time.Millisecond,
		Partitions: []transport.PartitionWindow{cut},
		Bus:        bus,
	})
	nw := msgpass.New(g, msgpass.Options{Seed: 42, Transport: tr})
	nw.Start()
	defer func() {
		nw.Stop()
		tr.Close()
	}()

	// Two messages that must cross the cut (one each way), sent while the
	// partition holds, plus one that routes entirely inside the connected
	// side.
	time.Sleep(150 * time.Millisecond)
	start := time.Now()
	nw.Send(0, "out-of-the-island", 2)
	nw.Send(3, "into-the-island", 0)
	nw.Send(2, "around-the-cut", 4)
	fmt.Println("3 messages sent while processor 0 is partitioned off...")

	// The message confined to the connected side lands immediately; the
	// two that must cross the cut arrive only after the heal.
	if !nw.WaitDelivered(1, 10*time.Second) {
		log.Fatal("in-island delivery missing")
	}
	d := nw.Deliveries()[0]
	fmt.Printf("  delivered %q at %d after %v (unaffected side)\n",
		d.Msg.Payload, d.At, time.Since(start).Round(time.Millisecond))
	if !nw.WaitDelivered(3, 10*time.Second) {
		log.Fatal("deliveries missing after heal")
	}
	for _, d := range nw.Deliveries()[1:] {
		fmt.Printf("  delivered %q at %d after %v (waited out the cut)\n",
			d.Msg.Payload, d.At, time.Since(start).Round(10*time.Millisecond))
	}
	s := nw.Stats()
	fmt.Printf("offers sent: %d (retransmissions waited out the cut); frames impaired: %d\n",
		s.OffersSent, s.LostInjected)
}
