// Quickstart: snap-stabilizing point-to-point messaging on a corrupted
// network.
//
// We build a 3×3 grid whose initial configuration is fully adversarial —
// corrupted routing tables, garbage messages in buffers, scrambled
// fairness queues — send a message from every processor, and run the
// composed system (self-stabilizing routing + SSMFP). Snap-stabilization
// means there is no warm-up phase to wait for: the sends are accepted
// immediately and every one of them is delivered exactly once.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssmfp"
)

func main() {
	net := ssmfp.NewNetwork(
		ssmfp.Grid(3, 3),
		ssmfp.WithCorruptStart(2009), // everything that may be corrupt, is
		ssmfp.WithDaemon("central-random"),
		ssmfp.WithDeliveryHandler(func(d ssmfp.Delivery) {
			tag := "valid"
			if !d.Valid {
				tag = "initial garbage"
			}
			fmt.Printf("  step %5d: %d ← %q (%s)\n", d.Step, d.To, d.Payload, tag)
		}),
	)

	fmt.Println("sending one message from every processor to its antipode...")
	for p := ssmfp.ProcessID(0); p < 9; p++ {
		net.Send(p, (p+4)%9, fmt.Sprintf("greetings from %d", p))
	}

	fmt.Println("deliveries:")
	report := net.Run()
	fmt.Println()
	fmt.Println(report)
	if !report.OK() {
		log.Fatal("specification SP violated — this should be impossible")
	}
}
